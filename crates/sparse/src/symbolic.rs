//! Compiled symbolic LU kernels: do the structural work once, replay it as
//! a flat instruction stream at every numeric point.
//!
//! [`LuWorkspace`](crate::LuWorkspace) replays a recorded
//! [`PivotOrder`] without pivot *search*, but it still pays a per-point
//! *structural* tax: triplet scatter into per-row vectors, a
//! `sort_unstable` per row, binary searches for every pivot and update
//! target, and `Vec::insert` for every fill-in entry — even though the
//! fill pattern is byte-for-byte identical at every point of a sweep.
//! A [`FactorProgram`] hoists all of that to compile time (the
//! Sparse-1.3/KLU split classic circuit simulators use for exactly this
//! workload):
//!
//! 1. **Symbolic factorization** — elimination is simulated on the
//!    sparsity pattern alone, computing the complete fill-in pattern of
//!    `L + U` ahead of time.
//! 2. **Slot layout** — every entry of the filled pattern gets one index
//!    ("slot") in a flat value array; a precomputed *stamp map* sends each
//!    raw input entry directly to its slot.
//! 3. **Instruction stream** — the elimination is encoded as flat arrays
//!    of precomputed slot indices: one pivot slot per step, one `(row,
//!    slot)` pair per multiplier, one `(dest, src)` pair per update.
//!
//! Numeric refactorization ([`FactorProgram::refactor`] /
//! [`FactorProgram::refactor_values`]) is then *scatter-then-replay* into
//! a reusable [`ProgramScratch`]: **zero sorting, zero searching, zero
//! insertion, zero allocation** in the steady state — a branch-free
//! linear pass over the instruction stream. See the
//! [crate docs](crate) for the phase diagram relating the three phases.
//!
//! # Example
//!
//! ```
//! use refgen_numeric::Complex;
//! use refgen_sparse::{FactorProgram, ProgramScratch, SparseLu, Triplets};
//!
//! # fn main() -> Result<(), refgen_sparse::FactorError> {
//! let mut a = Triplets::new(2);
//! a.add(0, 0, Complex::real(2.0));
//! a.add(0, 1, Complex::real(1.0));
//! a.add(1, 0, Complex::real(1.0));
//! a.add(1, 1, Complex::real(3.0));
//! let order = SparseLu::factor(&a)?.order().clone(); // pivot search, once
//! let program = FactorProgram::for_triplets(&a, &order)?; // symbolic, once
//!
//! let mut scratch = ProgramScratch::new();
//! let mut x = Vec::new();
//! program.refactor(&a, &mut scratch)?; // flat replay: no sort/search/insert
//! program.solve_into(&mut scratch, &[Complex::real(3.0), Complex::real(4.0)], &mut x);
//! assert!((x[0] - Complex::real(1.0)).abs() < 1e-12);
//! assert!((scratch.det().to_complex() - Complex::real(5.0)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::lu::{FactorError, PivotOrder};
use crate::triplets::Triplets;
use refgen_numeric::{Complex, ExtComplex, ExtProduct};
use std::collections::HashMap;

/// One multiplier of the elimination: the entry at `slot` (original
/// position `(row, pivot column)`) is divided by the pivot and then drives
/// the updates in `ops[ops_start..ops_end]`.
#[derive(Clone, Copy, Debug)]
struct LEntry {
    /// Original row index the multiplier eliminates (needed by the solve's
    /// forward pass).
    row: u32,
    /// Slot holding `a_{row,pc}` before, and the multiplier `l` after.
    slot: u32,
    /// First update op of this multiplier.
    ops_start: u32,
    /// One past the last update op of this multiplier.
    ops_end: u32,
}

/// One precomputed update: `vals[dest] -= l · vals[src]`.
#[derive(Clone, Copy, Debug)]
struct Op {
    dest: u32,
    src: u32,
}

/// A compiled symbolic factorization of one `(sparsity pattern,
/// [`PivotOrder`])` pair. See the [module docs](self).
///
/// The program is immutable and `Sync`: a parallel executor shares one
/// program across workers, each owning a [`ProgramScratch`]. Compilation is
/// **value-independent** — any matrix with the same raw entry positions
/// (in the same input order) replays the same program, which is what lets
/// a Monte-Carlo fleet of same-topology variants compile once.
#[derive(Clone, Debug)]
pub struct FactorProgram {
    n: usize,
    slots: usize,
    /// The raw input positions the program was compiled for, in input
    /// order (debug validation of [`FactorProgram::refactor`] callers).
    positions: Vec<(u32, u32)>,
    /// Stamp map: raw input entry `i` accumulates into `vals[scatter[i]]`.
    scatter: Vec<u32>,
    /// Slot of the pivot entry, per elimination step.
    pivot_slots: Vec<u32>,
    /// Pivot row (original index) per step.
    pivot_rows: Vec<u32>,
    /// Pivot column (original index) per step.
    pivot_cols: Vec<u32>,
    /// Range into `lents` per step.
    lranges: Vec<(u32, u32)>,
    lents: Vec<LEntry>,
    ops: Vec<Op>,
    /// Range into `uents` per step: the pivot-free U row.
    uranges: Vec<(u32, u32)>,
    /// `(original column, slot)` per stored U entry, pivot excluded.
    uents: Vec<(u32, u32)>,
    fill_in: usize,
    sign: f64,
}

impl FactorProgram {
    /// Compiles the program for the pattern given by `positions` (raw
    /// `(row, col)` entry positions, duplicates allowed — they accumulate
    /// into one slot) under `order`.
    ///
    /// # Errors
    ///
    /// [`FactorError::OrderMismatch`] when `order` is for a different
    /// dimension, and [`FactorError::Singular`] when a prescribed pivot
    /// position is **structurally** absent from the filled pattern (every
    /// numeric replay would fail at that step regardless of values).
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range for `dim`.
    pub fn compile(
        dim: usize,
        positions: &[(usize, usize)],
        order: &PivotOrder,
    ) -> Result<FactorProgram, FactorError> {
        if order.dim() != dim {
            return Err(FactorError::OrderMismatch { expected: order.dim(), actual: dim });
        }
        // Slot assignment for the raw pattern + per-row sorted column sets.
        let mut slot_of: HashMap<(usize, usize), u32> = HashMap::new();
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); dim];
        let mut scatter = Vec::with_capacity(positions.len());
        for &(r, c) in positions {
            assert!(r < dim && c < dim, "position ({r},{c}) out of range for dim {dim}");
            let next = u32::try_from(slot_of.len()).expect("pattern exceeds u32 slots");
            let slot = *slot_of.entry((r, c)).or_insert_with(|| {
                rows[r].push(c);
                next
            });
            scatter.push(slot);
        }
        for row in &mut rows {
            row.sort_unstable();
        }
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); dim];
        for (r, row) in rows.iter().enumerate() {
            for &c in row {
                col_rows[c].push(r);
            }
        }
        let initial_nnz = slot_of.len();
        let mut row_active = vec![true; dim];

        let mut pivot_slots = Vec::with_capacity(dim);
        let mut pivot_rows = Vec::with_capacity(dim);
        let mut pivot_cols = Vec::with_capacity(dim);
        let mut lranges = Vec::with_capacity(dim);
        let mut lents: Vec<LEntry> = Vec::new();
        let mut ops: Vec<Op> = Vec::new();
        let mut uranges = Vec::with_capacity(dim);
        let mut uents: Vec<(u32, u32)> = Vec::new();

        // Symbolic elimination: identical structure to the numeric replay
        // in `LuWorkspace::refactor`, on positions instead of values.
        for step in 0..dim {
            let pr = order.rows()[step];
            let pc = order.cols()[step];
            if rows[pr].binary_search(&pc).is_err() {
                return Err(FactorError::Singular { step });
            }
            row_active[pr] = false;
            pivot_slots.push(slot_of[&(pr, pc)]);
            pivot_rows.push(pr as u32);
            pivot_cols.push(pc as u32);

            // rows[pr] is final at its own pivot step (updates only reach
            // rows that are still active): record the pivot-free U row.
            let ustart = uents.len() as u32;
            for &c in &rows[pr] {
                if c != pc {
                    uents.push((c as u32, slot_of[&(pr, c)]));
                }
            }
            uranges.push((ustart, uents.len() as u32));

            let lstart = lents.len() as u32;
            let prow = std::mem::take(&mut rows[pr]);
            let targets = std::mem::take(&mut col_rows[pc]);
            for &r2 in &targets {
                if !row_active[r2] {
                    continue;
                }
                let Ok(pos) = rows[r2].binary_search(&pc) else {
                    continue;
                };
                // The eliminated entry leaves U's pattern (its slot stays,
                // holding the multiplier — the entry of L this step makes).
                rows[r2].remove(pos);
                let ops_start = ops.len() as u32;
                for &c in &prow {
                    if c == pc {
                        continue;
                    }
                    let src = slot_of[&(pr, c)];
                    let dest = match rows[r2].binary_search(&c) {
                        Ok(_) => slot_of[&(r2, c)],
                        Err(ins) => {
                            // Fill-in: a brand-new slot, discovered once at
                            // compile time instead of at every point.
                            let slot =
                                u32::try_from(slot_of.len()).expect("pattern exceeds u32 slots");
                            slot_of.insert((r2, c), slot);
                            rows[r2].insert(ins, c);
                            col_rows[c].push(r2);
                            slot
                        }
                    };
                    ops.push(Op { dest, src });
                }
                lents.push(LEntry {
                    row: r2 as u32,
                    slot: slot_of[&(r2, pc)],
                    ops_start,
                    ops_end: ops.len() as u32,
                });
            }
            rows[pr] = prow;
            col_rows[pc] = targets;
            lranges.push((lstart, lents.len() as u32));
        }

        Ok(FactorProgram {
            n: dim,
            slots: slot_of.len(),
            positions: positions.iter().map(|&(r, c)| (r as u32, c as u32)).collect(),
            scatter,
            pivot_slots,
            pivot_rows,
            pivot_cols,
            lranges,
            lents,
            ops,
            uranges,
            uents,
            fill_in: slot_of.len() - initial_nnz,
            sign: order.sign(),
        })
    }

    /// Compiles the program for `a`'s raw entry positions (in entry order,
    /// so [`FactorProgram::refactor`] accepts any same-pattern matrix).
    ///
    /// # Errors
    ///
    /// See [`FactorProgram::compile`].
    pub fn for_triplets(a: &Triplets, order: &PivotOrder) -> Result<FactorProgram, FactorError> {
        let positions: Vec<(usize, usize)> = a.entries().iter().map(|&(r, c, _)| (r, c)).collect();
        Self::compile(a.dim(), &positions, order)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of value slots (nonzeros of `L + U`, fill-in included).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Fill-in entries the elimination creates (precomputed, so numeric
    /// replay never inserts).
    pub fn fill_in(&self) -> usize {
        self.fill_in
    }

    /// Total update instructions in the stream — the inner-loop work of
    /// one numeric replay.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Multipliers the elimination computes (L-entries) — one complex
    /// division each per numeric replay.
    pub fn multiplier_count(&self) -> usize {
        self.lents.len()
    }

    /// Raw input entries the compiled stamp map expects per replay (the
    /// exact item count [`FactorProgram::refactor_values`] and
    /// [`FactorProgram::refactor_batch`] require per lane).
    pub fn raw_entries(&self) -> usize {
        self.scatter.len()
    }

    /// Numeric refactorization of `a` (same positions the program was
    /// compiled for, values free to differ): scatter every raw entry
    /// through the stamp map, then replay the instruction stream.
    ///
    /// # Errors
    ///
    /// [`FactorError::Singular`] when a prescribed pivot is exactly zero
    /// at this matrix's values (the caller falls back to a fresh
    /// [`SparseLu::factor`](crate::SparseLu::factor), exactly like the
    /// [`LuWorkspace`](crate::LuWorkspace) path).
    ///
    /// # Panics
    ///
    /// Panics if `a`'s dimension or raw entry count differs from the
    /// compiled pattern (debug builds additionally verify every position).
    pub fn refactor(&self, a: &Triplets, scratch: &mut ProgramScratch) -> Result<(), FactorError> {
        assert_eq!(a.dim(), self.n, "matrix dimension differs from compiled pattern");
        assert_eq!(
            a.raw_len(),
            self.scatter.len(),
            "raw entry count differs from compiled pattern"
        );
        debug_assert!(
            a.entries()
                .iter()
                .zip(&self.positions)
                .all(|(&(r, c, _), &(pr, pc))| r == pr as usize && c == pc as usize),
            "entry positions differ from compiled pattern"
        );
        self.refactor_values(a.entries().iter().map(|&(_, _, v)| v), scratch)
    }

    /// As [`FactorProgram::refactor`], with the values supplied directly in
    /// compiled-position order — the zero-copy path sweep plans use to
    /// stamp `K₀ + s·K₁` straight into the slot array without assembling a
    /// [`Triplets`] at all.
    ///
    /// # Errors
    ///
    /// See [`FactorProgram::refactor`].
    ///
    /// # Panics
    ///
    /// Panics if `values` yields a different number of items than the
    /// compiled pattern has raw entries.
    pub fn refactor_values<I>(
        &self,
        values: I,
        scratch: &mut ProgramScratch,
    ) -> Result<(), FactorError>
    where
        I: IntoIterator<Item = Complex>,
    {
        scratch.begin(self);
        let mut count = 0usize;
        for v in values {
            // Indexing `scatter[count]` (rather than zipping, which would
            // silently truncate) makes a too-long iterator panic just like
            // a too-short one.
            scratch.vals[self.scatter[count] as usize] += v;
            count += 1;
        }
        assert_eq!(count, self.scatter.len(), "value count differs from compiled pattern");
        self.replay(scratch)
    }

    /// The branch-free elimination replay.
    fn replay(&self, scratch: &mut ProgramScratch) -> Result<(), FactorError> {
        let vals = &mut scratch.vals;
        // Deferred-normalization fold: bit-identical to
        // `det *= ExtComplex::from_complex(pivot)` per pivot, without the
        // per-factor exponent extraction (see `ExtProduct`).
        let mut det = ExtProduct::ONE;
        for step in 0..self.n {
            let pivot = vals[self.pivot_slots[step] as usize];
            if pivot == Complex::ZERO {
                return Err(FactorError::Singular { step });
            }
            det.mul_complex(pivot);
            let (ls, le) = self.lranges[step];
            for ent in &self.lents[ls as usize..le as usize] {
                let l = vals[ent.slot as usize] / pivot;
                vals[ent.slot as usize] = l;
                for op in &self.ops[ent.ops_start as usize..ent.ops_end as usize] {
                    let d = l * vals[op.src as usize];
                    vals[op.dest as usize] -= d;
                }
            }
        }
        scratch.det = det.value() * Complex::real(self.sign);
        scratch.factored = true;
        Ok(())
    }

    /// Solves `A·x = b` with the factorization last replayed into
    /// `scratch`, writing into `x` (cleared and refilled; both `x` and the
    /// internal forward-elimination buffer retain their allocations). The
    /// back substitution runs over the precompiled pivot-free U entries —
    /// no per-entry pivot test.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` holds no successful replay of this program or
    /// `b.len()` differs from the dimension.
    pub fn solve_into(&self, scratch: &mut ProgramScratch, b: &[Complex], x: &mut Vec<Complex>) {
        assert!(scratch.factored, "scratch holds no factorization");
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        scratch.work.clear();
        scratch.work.extend_from_slice(b);
        // Forward elimination replay: y[k] lives at work[pivot_rows[k]].
        for step in 0..self.n {
            let t = scratch.work[self.pivot_rows[step] as usize];
            if t == Complex::ZERO {
                continue;
            }
            let (ls, le) = self.lranges[step];
            for ent in &self.lents[ls as usize..le as usize] {
                scratch.work[ent.row as usize] -= scratch.vals[ent.slot as usize] * t;
            }
        }
        // Back substitution in original column coordinates.
        x.clear();
        x.resize(self.n, Complex::ZERO);
        for step in (0..self.n).rev() {
            let mut s = scratch.work[self.pivot_rows[step] as usize];
            let (us, ue) = self.uranges[step];
            for &(c, slot) in &self.uents[us as usize..ue as usize] {
                s -= scratch.vals[slot as usize] * x[c as usize];
            }
            x[self.pivot_cols[step] as usize] = s / scratch.vals[self.pivot_slots[step] as usize];
        }
    }

    /// Batched numeric refactorization: one traversal of the instruction
    /// stream drives `lanes` independent value sets ("lanes") at once.
    ///
    /// `lane_values` yields one value iterator per lane, each in the same
    /// compiled-position order [`FactorProgram::refactor_values`] expects.
    /// The slot array is laid out slot-major (§[`BatchScratch`]), so every
    /// instruction fetched once applies to all lanes over contiguous
    /// memory — the amortization a one-lane replay cannot have.
    ///
    /// Per live lane, the arithmetic performed is **operation-for-operation
    /// identical** to a one-lane [`FactorProgram::refactor_values`] replay:
    /// results (multipliers, determinant, subsequent solves) are
    /// bit-identical at any lane count. A lane whose prescribed pivot is
    /// exactly zero *dies* at that step — its first failing step is
    /// captured per lane ([`BatchScratch::singular_step`], mirroring the
    /// one-lane `Singular { step }` error) and the remaining lanes are
    /// unaffected; the dead lane's slots keep computing lane-local garbage
    /// that is never read back.
    ///
    /// # Panics
    ///
    /// Panics if `lane_values` is empty or any lane yields a different
    /// number of items than the compiled pattern has raw entries.
    pub fn refactor_batch<L, I>(&self, lane_values: L, scratch: &mut BatchScratch)
    where
        L: IntoIterator<Item = I>,
        L::IntoIter: ExactSizeIterator,
        I: IntoIterator<Item = Complex>,
    {
        let iter = lane_values.into_iter();
        let lanes = iter.len();
        assert!(lanes > 0, "batch needs at least one lane");
        scratch.begin(self, lanes);
        for (lane, values) in iter.enumerate() {
            let mut count = 0usize;
            for v in values {
                scratch.vals[self.scatter[count] as usize * lanes + lane] += v;
                count += 1;
            }
            assert_eq!(count, self.scatter.len(), "value count differs from compiled pattern");
        }
        self.replay_batch(scratch);
    }

    /// Variant-major batched refactorization with **precomputed
    /// lane-interleaved stamp coefficients**: raw entry `e` of lane `k`
    /// takes the value `k0[e·lanes + k] + s · k1[e·lanes + k]`, the affine
    /// per-entry form every frequency-domain stamp has. This is the
    /// allocation- and iterator-free fast path for fleet sampling
    /// (N variants, one `s`): the coefficient arrays are built once per
    /// fleet, and the stamp loop vectorizes over the contiguous lanes of
    /// each entry with `s` broadcast — performing, per lane, exactly the
    /// scalar `k0 + s·k1` then `+=` sequence of
    /// [`FactorProgram::refactor_batch`] with an equivalent value
    /// iterator, so results are bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or the coefficient slices' length is not
    /// `lanes ×` the compiled pattern's raw entry count.
    pub fn refactor_batch_interleaved(
        &self,
        k0: &[Complex],
        k1: &[Complex],
        s: Complex,
        lanes: usize,
        scratch: &mut BatchScratch,
    ) {
        assert!(lanes > 0, "batch needs at least one lane");
        let entries = self.scatter.len();
        assert_eq!(k0.len(), entries * lanes, "k0 length differs from compiled pattern");
        assert_eq!(k1.len(), entries * lanes, "k1 length differs from compiled pattern");
        scratch.begin(self, lanes);
        #[cfg(target_arch = "x86_64")]
        if avx_available() {
            // SAFETY: AVX support was verified at runtime.
            unsafe { stamp_interleaved_avx(&self.scatter, k0, k1, s, &mut scratch.vals, lanes) };
            self.replay_batch(scratch);
            return;
        }
        for (e, &slot) in self.scatter.iter().enumerate() {
            let base = e * lanes;
            let ss = slot as usize * lanes;
            for lane in 0..lanes {
                scratch.vals[ss + lane] += k0[base + lane] + s * k1[base + lane];
            }
        }
        self.replay_batch(scratch);
    }

    /// The batched elimination replay: never fails as a whole — per-lane
    /// zero pivots are captured in `scratch.singular`.
    fn replay_batch(&self, scratch: &mut BatchScratch) {
        let lanes = scratch.lanes;
        for step in 0..self.n {
            let ps = self.pivot_slots[step] as usize * lanes;
            scratch.pivot_lane.copy_from_slice(&scratch.vals[ps..ps + lanes]);
            batch_pivot_det(
                step,
                &scratch.pivot_lane,
                &mut scratch.det_mant,
                &mut scratch.det_exp,
                &mut scratch.singular,
            );
            let (ls, le) = self.lranges[step];
            let lents = &self.lents[ls as usize..le as usize];
            // The whole L-column update of one step runs as a single
            // fused kernel: per-op dispatch overhead would otherwise eat
            // the lane amortization the batch exists for.
            #[cfg(target_arch = "x86_64")]
            if avx_available() {
                // SAFETY: AVX support was verified at runtime.
                unsafe {
                    eliminate_step_avx(
                        lents,
                        &self.ops,
                        &mut scratch.vals,
                        &scratch.pivot_lane,
                        &mut scratch.mult_lane,
                        lanes,
                    )
                };
                continue;
            }
            eliminate_step_scalar(
                lents,
                &self.ops,
                &mut scratch.vals,
                &scratch.pivot_lane,
                &mut scratch.mult_lane,
                lanes,
            );
        }
        for lane in 0..lanes {
            if scratch.singular[lane] == LANE_LIVE {
                let d = ExtComplex::new(scratch.det_mant[lane], scratch.det_exp[lane])
                    * Complex::real(self.sign);
                scratch.det_mant[lane] = d.mantissa();
                scratch.det_exp[lane] = d.exponent();
            }
        }
        scratch.factored = true;
    }

    /// Batched solve with the factorization last replayed into `scratch`:
    /// `b` holds `lanes` right-hand sides row-major (`b[row·lanes + lane]`),
    /// `x` receives the solutions column-major (`x[col·lanes + lane]`,
    /// cleared and refilled). Per live lane the result is bit-identical to
    /// a one-lane [`FactorProgram::solve_into`] — including the forward
    /// pass's exact-zero skip, applied per lane. Lanes that died during
    /// [`FactorProgram::refactor_batch`] produce garbage in their `x` lane;
    /// callers must consult [`BatchScratch::singular_step`] first.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` holds no batched replay of this program or
    /// `b.len()` differs from `dim · lanes`.
    pub fn solve_batch(&self, scratch: &mut BatchScratch, b: &[Complex], x: &mut Vec<Complex>) {
        assert!(scratch.factored, "scratch holds no factorization");
        let lanes = scratch.lanes;
        assert_eq!(b.len(), self.n * lanes, "rhs length mismatch");
        scratch.work.clear();
        scratch.work.extend_from_slice(b);
        // Forward elimination replay: y[k] lives at work[pivot_rows[k]·lanes].
        for step in 0..self.n {
            let pr = self.pivot_rows[step] as usize * lanes;
            scratch.mult_lane.copy_from_slice(&scratch.work[pr..pr + lanes]);
            // Every lane skips a zero y (see below); when *all* lanes are
            // zero — the common case for sparse excitations, where fleet
            // variants share the zero structure — the whole step is a
            // no-op and the instruction stream advances for free.
            if scratch.mult_lane.iter().all(|t| *t == Complex::ZERO) {
                continue;
            }
            let (ls, le) = self.lranges[step];
            let lents = &self.lents[ls as usize..le as usize];
            #[cfg(target_arch = "x86_64")]
            if avx_available() {
                // SAFETY: AVX support was verified at runtime.
                unsafe {
                    forward_step_avx(
                        lents,
                        &scratch.vals,
                        &mut scratch.work,
                        &scratch.mult_lane,
                        lanes,
                    )
                };
                continue;
            }
            for ent in lents {
                let rs = ent.row as usize * lanes;
                let es = ent.slot as usize * lanes;
                for lane in 0..lanes {
                    let t = scratch.mult_lane[lane];
                    // The one-lane solve skips a zero y entirely; replicate
                    // per lane (subtracting `l·0` could still flip signed
                    // zeros, so "skip" and "multiply by zero" differ in bits).
                    if t == Complex::ZERO {
                        continue;
                    }
                    let d = scratch.vals[es + lane] * t;
                    scratch.work[rs + lane] -= d;
                }
            }
        }
        // Back substitution in original column coordinates.
        x.clear();
        x.resize(self.n * lanes, Complex::ZERO);
        for step in (0..self.n).rev() {
            let pr = self.pivot_rows[step] as usize * lanes;
            scratch.pivot_lane.copy_from_slice(&scratch.work[pr..pr + lanes]);
            let (us, ue) = self.uranges[step];
            let uents = &self.uents[us as usize..ue as usize];
            let ps = self.pivot_slots[step] as usize * lanes;
            let pc = self.pivot_cols[step] as usize * lanes;
            #[cfg(target_arch = "x86_64")]
            if avx_available() {
                // SAFETY: AVX support was verified at runtime. One fused
                // region covers the step's U-row updates and the closing
                // pivot division (see `eliminate_step_avx` for why).
                unsafe {
                    back_step_avx(uents, &scratch.vals, x, &mut scratch.pivot_lane, ps, pc, lanes)
                };
                continue;
            }
            for &(c, slot) in uents {
                let cs = c as usize * lanes;
                let ss = slot as usize * lanes;
                lanes_mul_sub(
                    &scratch.vals[ss..ss + lanes],
                    &x[cs..cs + lanes],
                    &mut scratch.pivot_lane,
                );
            }
            for lane in 0..lanes {
                x[pc + lane] = scratch.pivot_lane[lane] / scratch.vals[ps + lane];
            }
        }
    }
}

/// Sentinel in [`BatchScratch::singular`]: the lane is still live.
const LANE_LIVE: u32 = u32::MAX;

/// `dest[k] -= a[k] · b[k]` over complex lanes — the shared inner loop of
/// the batched refactor update and the batched back substitution.
///
/// On `x86_64` with AVX available at runtime, two complex lanes go through
/// one 256-bit `mul`/`mul`/`addsub`/`sub` sequence that performs exactly
/// the scalar operations of `Complex` multiply-then-subtract in the same
/// order — no FMA contraction, so results stay bit-identical to the scalar
/// loop (which also serves as the fallback and handles the odd tail lane).
#[inline]
fn lanes_mul_sub(a: &[Complex], b: &[Complex], dest: &mut [Complex]) {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // SAFETY: AVX support was verified at runtime.
        unsafe { lanes_mul_sub_avx(a, b, dest) };
        return;
    }
    lanes_mul_sub_scalar(a, b, dest);
}

fn lanes_mul_sub_scalar(a: &[Complex], b: &[Complex], dest: &mut [Complex]) {
    for ((&ak, &bk), dk) in a.iter().zip(b).zip(dest) {
        let d = ak * bk;
        *dk -= d;
    }
}

#[cfg(target_arch = "x86_64")]
fn avx_available() -> bool {
    use std::sync::OnceLock;
    static AVX: OnceLock<bool> = OnceLock::new();
    *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[inline]
unsafe fn lanes_mul_sub_avx(a: &[Complex], b: &[Complex], dest: &mut [Complex]) {
    use std::arch::x86_64::{
        _mm256_addsub_pd, _mm256_loadu_pd, _mm256_movedup_pd, _mm256_mul_pd, _mm256_permute_pd,
        _mm256_storeu_pd, _mm256_sub_pd,
    };
    let lanes = dest.len();
    debug_assert!(a.len() == lanes && b.len() == lanes);
    let pairs = lanes / 2;
    // `Complex` is `repr(C)` { re: f64, im: f64 }, so a lane slice is an
    // interleaved (re, im) f64 array; loads/stores are unaligned.
    let ap = a.as_ptr().cast::<f64>();
    let bp = b.as_ptr().cast::<f64>();
    let dp = dest.as_mut_ptr().cast::<f64>();
    for k in 0..pairs {
        let av = _mm256_loadu_pd(ap.add(4 * k));
        let bv = _mm256_loadu_pd(bp.add(4 * k));
        let are = _mm256_movedup_pd(av); // [a0.re, a0.re, a1.re, a1.re]
        let aim = _mm256_permute_pd(av, 0xF); // [a0.im, a0.im, a1.im, a1.im]
        let bsw = _mm256_permute_pd(bv, 0x5); // [b0.im, b0.re, b1.im, b1.re]
                                              // addsub(re·b, im·b_swapped) = (re·b.re − im·b.im, re·b.im + im·b.re):
                                              // operand-for-operand the scalar complex product.
        let prod = _mm256_addsub_pd(_mm256_mul_pd(are, bv), _mm256_mul_pd(aim, bsw));
        let dv = _mm256_loadu_pd(dp.add(4 * k));
        _mm256_storeu_pd(dp.add(4 * k), _mm256_sub_pd(dv, prod));
    }
    if lanes % 2 == 1 {
        let k = lanes - 1;
        let d = a[k] * b[k];
        dest[k] -= d;
    }
}

/// One elimination step's full L-column update over all lanes: per
/// [`LEntry`], the per-lane division producing the step's multipliers,
/// then every `dest -= l·src` op of that entry. Scalar reference path —
/// the AVX kernel ([`eliminate_step_avx`]) must match it bit for bit on
/// live lanes.
fn eliminate_step_scalar(
    lents: &[LEntry],
    ops: &[Op],
    vals: &mut [Complex],
    pivot_lane: &[Complex],
    mult_lane: &mut [Complex],
    lanes: usize,
) {
    for ent in lents {
        let es = ent.slot as usize * lanes;
        for lane in 0..lanes {
            let l = vals[es + lane] / pivot_lane[lane];
            vals[es + lane] = l;
            mult_lane[lane] = l;
        }
        for op in &ops[ent.ops_start as usize..ent.ops_end as usize] {
            let ss = op.src as usize * lanes;
            let ds = op.dest as usize * lanes;
            // `dest != src` always (distinct slots), so the two lane
            // ranges are disjoint.
            let (src, dest): (&[Complex], &mut [Complex]) = if ds > ss {
                let (lo, hi) = vals.split_at_mut(ds);
                (&lo[ss..ss + lanes], &mut hi[..lanes])
            } else {
                let (lo, hi) = vals.split_at_mut(ss);
                (&hi[..lanes], &mut lo[ds..ds + lanes])
            };
            lanes_mul_sub_scalar(mult_lane, src, dest);
        }
    }
}

/// The fused AVX elimination step: one `target_feature` region covers the
/// lane divisions ([`div_lanes_avx`]) *and* the whole op list of each
/// [`LEntry`], so nothing pays a per-op dispatch check or an uninlinable
/// `target_feature` call boundary, and the multiplier lanes stay hot in
/// registers across the op loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn eliminate_step_avx(
    lents: &[LEntry],
    ops: &[Op],
    vals: &mut [Complex],
    pivot_lane: &[Complex],
    mult_lane: &mut [Complex],
    lanes: usize,
) {
    for ent in lents {
        let es = ent.slot as usize * lanes;
        div_lanes_avx(pivot_lane, &mut vals[es..es + lanes], mult_lane);
        for op in &ops[ent.ops_start as usize..ent.ops_end as usize] {
            let ss = op.src as usize * lanes;
            let ds = op.dest as usize * lanes;
            // `dest != src` always (distinct slots), so the two lane
            // ranges are disjoint.
            let (src, dest): (&[Complex], &mut [Complex]) = if ds > ss {
                let (lo, hi) = vals.split_at_mut(ds);
                (&lo[ss..ss + lanes], &mut hi[..lanes])
            } else {
                let (lo, hi) = vals.split_at_mut(ss);
                (&hi[..lanes], &mut lo[ds..ds + lanes])
            };
            lanes_mul_sub_avx(mult_lane, src, dest);
        }
    }
}

/// `num[k] /= den[k]` over complex lanes, the quotient mirrored into
/// `out` — Smith's division algorithm vectorized **branchlessly**. Each
/// lane's taken arm is selected by blending the arm *inputs* (the
/// dominant/recessive divisor components and the ±-pattern operands), so
/// only two `divpd` run per lane pair: one deduplicated ratio division
/// and one quotient division. Every primitive operation matches the
/// scalar arm exactly — `GE_OQ` is false on NaN like the scalar `>=`,
/// `big + small·r` equals both arms' denominators by IEEE addition
/// commutativity, and `addsub` with a negated operand reproduces the +/−
/// pair since `a − (−b)` is IEEE-exactly `a + b` — so live-lane results
/// are bit-identical to scalar `Complex` division.
///
/// The one scalar branch *not* replicated is the `0/0` special case: the
/// divisor here is always a pivot, and an exact-zero pivot means the lane
/// is already dead — its slots hold garbage that is never read back.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[inline]
unsafe fn div_lanes_avx(den: &[Complex], num: &mut [Complex], out: &mut [Complex]) {
    use std::arch::x86_64::{
        _mm256_addsub_pd, _mm256_blendv_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd,
        _mm256_permute_pd, _mm256_set1_pd, _mm256_set_m128d, _mm256_storeu_pd, _mm256_xor_pd,
        _mm_add_pd, _mm_andnot_pd, _mm_blendv_pd, _mm_cmp_pd, _mm_div_pd, _mm_loadu_pd, _mm_mul_pd,
        _mm_set1_pd, _mm_unpackhi_pd, _mm_unpacklo_pd, _CMP_GE_OQ,
    };
    let lanes = num.len();
    debug_assert!(den.len() == lanes && out.len() == lanes);
    let pairs = lanes / 2;
    let np = num.as_mut_ptr().cast::<f64>();
    let dp = den.as_ptr().cast::<f64>();
    let op = out.as_mut_ptr().cast::<f64>();
    let negz256 = _mm256_set1_pd(-0.0);
    let negz128 = _mm_set1_pd(-0.0);
    for k in 0..pairs {
        let nv = _mm256_loadu_pd(np.add(4 * k));
        // Unique divisor components, one slot per complex lane.
        let dlo = _mm_loadu_pd(dp.add(4 * k)); // [d0.re, d0.im]
        let dhi = _mm_loadu_pd(dp.add(4 * k + 2)); // [d1.re, d1.im]
        let dre = _mm_unpacklo_pd(dlo, dhi); // [d0.re, d1.re]
        let dim = _mm_unpackhi_pd(dlo, dhi); // [d0.im, d1.im]
                                             // Smith's branch condition |d.re| ≥ |d.im| per lane; select the
                                             // dominant (big) and recessive (small) components.
        let take_re =
            _mm_cmp_pd::<_CMP_GE_OQ>(_mm_andnot_pd(negz128, dre), _mm_andnot_pd(negz128, dim));
        let big = _mm_blendv_pd(dim, dre, take_re);
        let small = _mm_blendv_pd(dre, dim, take_re);
        // r = small/big (the scalar arm's ratio) and d = big + small·r:
        // the re-dominant arm writes d as `d.re + d.im·r`, the
        // im-dominant arm as `d.re·r + d.im` — IEEE addition is
        // commutative bit for bit, so one expression serves both.
        let r = _mm_div_pd(small, big);
        let d2 = _mm_add_pd(big, _mm_mul_pd(small, r));
        // Expand per-lane scalars to slot-duplicated 256-bit operands.
        let r4 = _mm256_set_m128d(_mm_unpackhi_pd(r, r), _mm_unpacklo_pd(r, r));
        let d4 = _mm256_set_m128d(_mm_unpackhi_pd(d2, d2), _mm_unpacklo_pd(d2, d2));
        let m4 =
            _mm256_set_m128d(_mm_unpackhi_pd(take_re, take_re), _mm_unpacklo_pd(take_re, take_re));
        let nsw = _mm256_permute_pd(nv, 0x5); // [n0.im, n0.re, n1.im, n1.re]
                                              // Numerators as one addsub(X, −Y):
                                              //   re-dominant: (n.re + n.im·r, n.im − n.re·r) → X = n,   Y = nsw·r
                                              //   im-dominant: (n.re·r + n.im, n.im·r − n.re) → X = n·r, Y = nsw
        let x = _mm256_blendv_pd(_mm256_mul_pd(nv, r4), nv, m4);
        let y = _mm256_blendv_pd(nsw, _mm256_mul_pd(nsw, r4), m4);
        let q = _mm256_div_pd(_mm256_addsub_pd(x, _mm256_xor_pd(y, negz256)), d4);
        _mm256_storeu_pd(np.add(4 * k), q);
        _mm256_storeu_pd(op.add(4 * k), q);
    }
    if lanes % 2 == 1 {
        let k = lanes - 1;
        let q = num[k] / den[k];
        num[k] = q;
        out[k] = q;
    }
}

/// One back-substitution step of the batched solve, fused into a single
/// `target_feature` region: the step's U-row multiply-subtracts into the
/// per-lane accumulator, then the closing pivot division writing the
/// solved column — same motivation as [`eliminate_step_avx`]. The
/// accumulator is consumed by the division (recopied next step), so the
/// kernel overwriting it with the quotient is fine.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn back_step_avx(
    uents: &[(u32, u32)],
    vals: &[Complex],
    x: &mut [Complex],
    acc: &mut [Complex],
    ps: usize,
    pc: usize,
    lanes: usize,
) {
    for &(c, slot) in uents {
        let cs = c as usize * lanes;
        let ss = slot as usize * lanes;
        lanes_mul_sub_avx(&vals[ss..ss + lanes], &x[cs..cs + lanes], acc);
    }
    div_lanes_avx(&vals[ps..ps + lanes], acc, &mut x[pc..pc + lanes]);
}

/// The AVX stamp loop of [`FactorProgram::refactor_batch_interleaved`]:
/// per raw entry, `vals[slot·lanes + k] += k0[k] + s·k1[k]` over the
/// entry's contiguous lanes, `s` broadcast. Scalar operand order
/// throughout (`s` is the product's `self`; multiply, add `k0`, then
/// accumulate), no FMA contraction — bit-identical to the scalar stamp.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn stamp_interleaved_avx(
    scatter: &[u32],
    k0: &[Complex],
    k1: &[Complex],
    s: Complex,
    vals: &mut [Complex],
    lanes: usize,
) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_addsub_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_permute_pd,
        _mm256_set1_pd, _mm256_storeu_pd,
    };
    let pairs = lanes / 2;
    let sre = _mm256_set1_pd(s.re);
    let sim = _mm256_set1_pd(s.im);
    for (e, &slot) in scatter.iter().enumerate() {
        let base = e * lanes;
        let k0p = k0.as_ptr().add(base).cast::<f64>();
        let k1p = k1.as_ptr().add(base).cast::<f64>();
        let vp = vals.as_mut_ptr().add(slot as usize * lanes).cast::<f64>();
        for k in 0..pairs {
            let k1v = _mm256_loadu_pd(k1p.add(4 * k));
            let prod = _mm256_addsub_pd(
                _mm256_mul_pd(sre, k1v),
                _mm256_mul_pd(sim, _mm256_permute_pd(k1v, 0x5)),
            );
            let v = _mm256_add_pd(_mm256_loadu_pd(k0p.add(4 * k)), prod);
            let dst = _mm256_loadu_pd(vp.add(4 * k));
            _mm256_storeu_pd(vp.add(4 * k), _mm256_add_pd(dst, v));
        }
        if lanes % 2 == 1 {
            let lane = lanes - 1;
            vals[slot as usize * lanes + lane] += k0[base + lane] + s * k1[base + lane];
        }
    }
}

/// One forward-elimination step of the batched solve over all lanes:
/// `work[row] −= vals[slot] · y` per [`LEntry`], with the one-lane
/// solve's exact-zero skip replicated **per lane** by blending: where
/// `y` is exactly zero (both components; `EQ_OQ` treats −0 == +0 like
/// the scalar `==`, and is false on NaN like it) the original `work`
/// bits are kept untouched — bit-identical to not executing the
/// subtraction, which matters because `work − l·0` could still flip
/// signed zeros. All arithmetic for non-zero lanes is the scalar
/// multiply-then-subtract operand order, no FMA contraction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn forward_step_avx(
    lents: &[LEntry],
    vals: &[Complex],
    work: &mut [Complex],
    y: &[Complex],
    lanes: usize,
) {
    use std::arch::x86_64::{
        _mm256_addsub_pd, _mm256_and_pd, _mm256_blendv_pd, _mm256_cmp_pd, _mm256_loadu_pd,
        _mm256_movedup_pd, _mm256_mul_pd, _mm256_permute_pd, _mm256_setzero_pd, _mm256_storeu_pd,
        _mm256_sub_pd, _CMP_EQ_OQ,
    };
    let pairs = lanes / 2;
    let yp = y.as_ptr().cast::<f64>();
    let zero = _mm256_setzero_pd();
    for ent in lents {
        let es = ent.slot as usize * lanes;
        let rs = ent.row as usize * lanes;
        let vp = vals.as_ptr().add(es).cast::<f64>();
        let wp = work.as_mut_ptr().add(rs).cast::<f64>();
        for k in 0..pairs {
            let tv = _mm256_loadu_pd(yp.add(4 * k));
            // Lane-zero mask: a slot is masked iff *both* slots of its
            // lane compare equal to zero.
            let z = _mm256_cmp_pd::<_CMP_EQ_OQ>(tv, zero);
            let zb = _mm256_and_pd(z, _mm256_permute_pd(z, 0x5));
            let av = _mm256_loadu_pd(vp.add(4 * k));
            // vals · y in the scalar operand order (vals is `self`).
            let prod = _mm256_addsub_pd(
                _mm256_mul_pd(_mm256_movedup_pd(av), tv),
                _mm256_mul_pd(_mm256_permute_pd(av, 0xF), _mm256_permute_pd(tv, 0x5)),
            );
            let dv = _mm256_loadu_pd(wp.add(4 * k));
            _mm256_storeu_pd(wp.add(4 * k), _mm256_blendv_pd(_mm256_sub_pd(dv, prod), dv, zb));
        }
        if lanes % 2 == 1 {
            let lane = lanes - 1;
            let t = y[lane];
            if t != Complex::ZERO {
                let d = vals[es + lane] * t;
                work[rs + lane] -= d;
            }
        }
    }
}

/// Per-step pivot capture over all lanes: records each lane's first
/// exact-zero pivot (killing the lane) and folds live pivots into the
/// per-lane determinant accumulator — the batched analogue of the
/// one-lane `det *= ExtComplex::from_complex(pivot)` fold.
fn batch_pivot_det(
    step: usize,
    pivot_lane: &[Complex],
    det_mant: &mut [Complex],
    det_exp: &mut [i64],
    singular: &mut [u32],
) {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // SAFETY: AVX support was verified at runtime.
        unsafe { det_update_avx(step, pivot_lane, det_mant, det_exp, singular) };
        return;
    }
    for lane in 0..pivot_lane.len() {
        det_update_lane(step, lane, pivot_lane, det_mant, det_exp, singular);
    }
}

/// One lane of the pivot-capture/determinant fold — the exact scalar
/// sequence of the one-lane replay, reference for [`det_update_avx`]
/// and its fallback for out-of-easy-range lanes.
#[inline]
fn det_update_lane(
    step: usize,
    lane: usize,
    pivot_lane: &[Complex],
    det_mant: &mut [Complex],
    det_exp: &mut [i64],
    singular: &mut [u32],
) {
    if singular[lane] != LANE_LIVE {
        return;
    }
    let pivot = pivot_lane[lane];
    if pivot == Complex::ZERO {
        singular[lane] = step as u32;
        return;
    }
    let d = ExtComplex::new(det_mant[lane], det_exp[lane]) * ExtComplex::from_complex(pivot);
    det_mant[lane] = d.mantissa();
    det_exp[lane] = d.exponent();
}

/// The AVX pivot-capture/determinant fold: two lanes per iteration,
/// bypassing the scalar path's `powi`-based renormalization (the single
/// hottest per-lane cost of a batched replay).
///
/// For a *finite* complex value whose dominant magnitude `dom` is a
/// normal f64 below `2^1023`, the [`ExtComplex`] normalization inside
/// `from_complex` and `Mul` reduces to: extract `e = ⌊log₂ dom⌋` from
/// the exponent bits, scale by the exact power of two `2^−e` (a bare
/// exponent-field f64; multiplying by it only shifts exponents, so it
/// is exact), and accumulate `e`. This kernel performs exactly that —
/// exponent extraction and the `2^−e` construction are integer bit ops,
/// the complex product uses the scalar operand order, and a shift of
/// zero multiplies by exactly `1.0`, bit-identical to the scalar
/// early-return. Any lane outside the easy range — already dead, zero
/// pivot (the singular capture), NaN/infinite components, subnormal
/// dominants, or `dom ≥ 2^1023` (where the bit-built scale would leave
/// the normal range) — reruns through [`det_update_lane`], the exact
/// scalar sequence, before anything is stored.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn det_update_avx(
    step: usize,
    pivot_lane: &[Complex],
    det_mant: &mut [Complex],
    det_exp: &mut [i64],
    singular: &mut [u32],
) {
    use std::arch::x86_64::{
        __m128i, _mm256_addsub_pd, _mm256_andnot_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd,
        _mm256_loadu_pd, _mm256_movedup_pd, _mm256_mul_pd, _mm256_permute_pd, _mm256_set1_pd,
        _mm256_storeu_pd, _mm_add_epi64, _mm_and_pd, _mm_castpd_si128, _mm_castsi128_pd,
        _mm_cmp_pd, _mm_loadu_si128, _mm_max_pd, _mm_movemask_pd, _mm_set1_epi64x, _mm_set1_pd,
        _mm_slli_epi64, _mm_srli_epi64, _mm_storeu_si128, _mm_sub_epi64, _mm_unpackhi_pd,
        _mm_unpacklo_pd, _CMP_GE_OQ, _CMP_LT_OQ,
    };
    let lanes = pivot_lane.len();
    let pairs = lanes / 2;
    let pp = pivot_lane.as_ptr().cast::<f64>();
    let mp = det_mant.as_mut_ptr().cast::<f64>();
    let negz256 = _mm256_set1_pd(-0.0);
    // The easy-range window [MIN_POSITIVE, 2^1023): dominants whose
    // biased exponent keeps the bit-built `2^−e` scale itself normal.
    let min_norm = _mm_set1_pd(f64::MIN_POSITIVE);
    let max_norm = _mm_set1_pd(f64::from_bits(2046u64 << 52)); // 2^1023
    let bias = _mm_set1_epi64x(1023);
    let two_bias = _mm_set1_epi64x(2046);
    for k in 0..pairs {
        let l0 = 2 * k;
        // Both-components-finite plus dom-in-window, checked per lane:
        // `LT_OQ`/`GE_OQ` are false on NaN, so any NaN component routes
        // to the scalar fallback (whose complex finiteness check runs
        // *before* the dominant is formed — `maxpd` alone could mask a
        // NaN real part behind a normal imaginary one).
        macro_rules! window_ok {
            ($re:expr, $im:expr, $dom:expr) => {
                _mm_movemask_pd(_mm_and_pd(
                    _mm_and_pd(
                        _mm_cmp_pd::<_CMP_LT_OQ>($re, max_norm),
                        _mm_cmp_pd::<_CMP_LT_OQ>($im, max_norm),
                    ),
                    _mm_cmp_pd::<_CMP_GE_OQ>($dom, min_norm),
                )) == 0b11
            };
        }
        macro_rules! fallback_pair {
            () => {{
                det_update_lane(step, l0, pivot_lane, det_mant, det_exp, singular);
                det_update_lane(step, l0 + 1, pivot_lane, det_mant, det_exp, singular);
                continue;
            }};
        }
        if singular[l0] != LANE_LIVE || singular[l0 + 1] != LANE_LIVE {
            fallback_pair!();
        }
        let pv = _mm256_loadu_pd(pp.add(4 * k));
        let pa = _mm256_andnot_pd(negz256, pv);
        let alo = _mm256_castpd256_pd128(pa);
        let ahi = _mm256_extractf128_pd::<1>(pa);
        let pre = _mm_unpacklo_pd(alo, ahi); // [|p0.re|, |p1.re|]
        let pim = _mm_unpackhi_pd(alo, ahi); // [|p0.im|, |p1.im|]
                                             // Matches the scalar `re.abs().max(im.abs())` bit for bit: the
                                             // NaN/equal-operand cases where `maxpd` and `f64::max` could
                                             // differ are excluded by the window check (abs leaves no −0).
        let dom_p = _mm_max_pd(pre, pim);
        if !window_ok!(pre, pim, dom_p) {
            fallback_pair!();
        }
        // e_p = biased − 1023; scale 2^−e_p built directly in the
        // exponent field: bits = (2046 − biased) << 52.
        let biased_p = _mm_srli_epi64::<52>(_mm_castpd_si128(dom_p));
        let scale_p = _mm_castsi128_pd(_mm_slli_epi64::<52>(_mm_sub_epi64(two_bias, biased_p)));
        let sp = _mm256_mul_pd(pv, expand_lane_scalars(scale_p));
        // m = det.mantissa ⊗ scaled pivot, scalar complex operand order.
        let dm = _mm256_loadu_pd(mp.add(4 * k));
        let m = _mm256_addsub_pd(
            _mm256_mul_pd(_mm256_movedup_pd(dm), sp),
            _mm256_mul_pd(_mm256_permute_pd(dm, 0xF), _mm256_permute_pd(sp, 0x5)),
        );
        let ma = _mm256_andnot_pd(negz256, m);
        let mlo = _mm256_castpd256_pd128(ma);
        let mhi = _mm256_extractf128_pd::<1>(ma);
        let mre = _mm_unpacklo_pd(mlo, mhi);
        let mim = _mm_unpackhi_pd(mlo, mhi);
        let dom_m = _mm_max_pd(mre, mim);
        // A cancelled-to-zero, overflowed, or underflowed product reruns
        // the pair scalar — nothing has been stored yet.
        if !window_ok!(mre, mim, dom_m) {
            fallback_pair!();
        }
        let biased_m = _mm_srli_epi64::<52>(_mm_castpd_si128(dom_m));
        let scale_m = _mm_castsi128_pd(_mm_slli_epi64::<52>(_mm_sub_epi64(two_bias, biased_m)));
        _mm256_storeu_pd(mp.add(4 * k), _mm256_mul_pd(m, expand_lane_scalars(scale_m)));
        let e_sum = _mm_add_epi64(_mm_sub_epi64(biased_p, bias), _mm_sub_epi64(biased_m, bias));
        let ep = det_exp.as_mut_ptr().add(l0).cast::<__m128i>();
        _mm_storeu_si128(ep, _mm_add_epi64(_mm_loadu_si128(ep), e_sum));
    }
    if lanes % 2 == 1 {
        det_update_lane(step, lanes - 1, pivot_lane, det_mant, det_exp, singular);
    }
}

/// `[s0, s1]` → `[s0, s0, s1, s1]`: per-lane scalars expanded to the
/// slot-duplicated form 256-bit complex kernels consume.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[inline]
unsafe fn expand_lane_scalars(v: std::arch::x86_64::__m128d) -> std::arch::x86_64::__m256d {
    use std::arch::x86_64::{_mm256_set_m128d, _mm_unpackhi_pd, _mm_unpacklo_pd};
    _mm256_set_m128d(_mm_unpackhi_pd(v, v), _mm_unpacklo_pd(v, v))
}

/// Per-executor mutable state for **batched** [`FactorProgram`] execution:
/// `lanes` independent value sets driven through one instruction-stream
/// traversal ([`FactorProgram::refactor_batch`] /
/// [`FactorProgram::solve_batch`]).
///
/// # Lane layout
///
/// The slot array is **slot-major** structure-of-arrays: lane `k` of slot
/// `s` lives at `vals[s·lanes + k]`, so the lanes touched by one
/// instruction are contiguous (one cache line for 4 lanes, vectorizable
/// without gathers). The forward-elimination buffer is row-major
/// (`work[row·lanes + lane]`) and solutions come back column-major
/// (`x[col·lanes + lane]`).
///
/// # Per-lane failure
///
/// One dead variant does not kill the batch: a lane hitting an exact-zero
/// pivot records its first failing step ([`BatchScratch::singular_step`],
/// the batched analogue of `FactorError::Singular { step }`) while the
/// other lanes proceed bit-identically to one-lane replays.
///
/// All buffers retain capacity across points; one scratch per worker
/// thread, the program shared.
#[derive(Clone, Debug, Default)]
pub struct BatchScratch {
    lanes: usize,
    vals: Vec<Complex>,
    work: Vec<Complex>,
    /// Per-lane staging: current pivots (refactor) / back-substitution
    /// accumulator (solve).
    pivot_lane: Vec<Complex>,
    /// Per-lane staging: current multipliers (refactor) / forward-pass `y`
    /// (solve).
    mult_lane: Vec<Complex>,
    /// Per-lane determinant accumulator, split into its
    /// [`ExtComplex`] components (mantissa / exponent) so the pivot fold
    /// can run vectorized over contiguous mantissas. The stored pair is
    /// always a *normalized* value, so reassembling through
    /// [`ExtComplex::new`] (whose normalization is idempotent) is
    /// bit-identical to having stored the `ExtComplex` whole.
    det_mant: Vec<Complex>,
    det_exp: Vec<i64>,
    /// First singular step per lane, [`LANE_LIVE`] while alive.
    singular: Vec<u32>,
    factored: bool,
}

impl BatchScratch {
    /// An empty scratch; buffers size themselves on first use and the lane
    /// count follows each [`FactorProgram::refactor_batch`] call.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    /// Lane count of the last batched replay.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The elimination step at which `lane` died (`None` while live) — the
    /// per-lane analogue of `FactorError::Singular { step }`.
    ///
    /// # Panics
    ///
    /// Panics if no batched replay has run yet or `lane` is out of range.
    pub fn singular_step(&self, lane: usize) -> Option<usize> {
        assert!(self.factored, "scratch holds no factorization");
        match self.singular[lane] {
            LANE_LIVE => None,
            step => Some(step as usize),
        }
    }

    /// Determinant of `lane` from the last batched replay (sign-corrected,
    /// extended-range), or the same `Singular { step }` error a one-lane
    /// replay of that lane's values would have returned.
    ///
    /// # Panics
    ///
    /// Panics if no batched replay has run yet or `lane` is out of range.
    pub fn lane_det(&self, lane: usize) -> Result<ExtComplex, FactorError> {
        assert!(self.factored, "scratch holds no factorization");
        match self.singular[lane] {
            LANE_LIVE => Ok(ExtComplex::new(self.det_mant[lane], self.det_exp[lane])),
            step => Err(FactorError::Singular { step: step as usize }),
        }
    }

    /// Clears per-lane state for a new batched replay, retaining capacity.
    fn begin(&mut self, program: &FactorProgram, lanes: usize) {
        self.factored = false;
        self.lanes = lanes;
        self.vals.clear();
        self.vals.resize(program.slots * lanes, Complex::ZERO);
        self.pivot_lane.clear();
        self.pivot_lane.resize(lanes, Complex::ZERO);
        self.mult_lane.clear();
        self.mult_lane.resize(lanes, Complex::ZERO);
        self.det_mant.clear();
        self.det_mant.resize(lanes, ExtComplex::ONE.mantissa());
        self.det_exp.clear();
        self.det_exp.resize(lanes, ExtComplex::ONE.exponent());
        self.singular.clear();
        self.singular.resize(lanes, LANE_LIVE);
    }
}

/// Per-executor mutable state for [`FactorProgram`] execution: the flat
/// slot-value array, the forward-elimination buffer, and the determinant
/// of the last successful replay. All buffers retain capacity across
/// points — the steady state performs **zero heap allocation**. One
/// scratch per worker thread; the program is shared.
#[derive(Clone, Debug, Default)]
pub struct ProgramScratch {
    vals: Vec<Complex>,
    work: Vec<Complex>,
    det: ExtComplex,
    factored: bool,
}

impl ProgramScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> ProgramScratch {
        ProgramScratch::default()
    }

    /// Determinant of the last successful replay (sign-corrected for the
    /// compiled order's permutations), in extended range.
    ///
    /// # Panics
    ///
    /// Panics if no replay has succeeded yet.
    pub fn det(&self) -> ExtComplex {
        assert!(self.factored, "scratch holds no factorization");
        self.det
    }

    /// Clears the slot array for a new replay of `program`, retaining
    /// capacity (a `resize` within capacity is a plain linear fill).
    fn begin(&mut self, program: &FactorProgram) {
        self.factored = false;
        self.vals.clear();
        self.vals.resize(program.slots, Complex::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{LuWorkspace, SparseLu};

    fn tri(dim: usize, entries: &[(usize, usize, f64)]) -> Triplets {
        let mut t = Triplets::new(dim);
        for &(r, c, v) in entries {
            t.add(r, c, Complex::real(v));
        }
        t
    }

    /// The arrow matrix with fill-in used by the workspace tests: the
    /// program must reproduce workspace refactorization across a sweep of
    /// values, reusing one scratch.
    #[test]
    fn program_matches_workspace_across_value_sweep() {
        let n = 10;
        let build = |w: f64| {
            let mut t = Triplets::new(n);
            for i in 0..n {
                t.add(i, i, Complex::new(2.0 + i as f64, w));
            }
            for i in 1..n {
                t.add(0, i, Complex::real(1.0));
                t.add(i, 0, Complex::new(0.5, -w));
            }
            t
        };
        let order = SparseLu::factor(&build(0.1)).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&build(0.1), &order).unwrap();
        assert_eq!(program.dim(), n);

        let mut scratch = ProgramScratch::new();
        let mut ws = LuWorkspace::new();
        let (mut x, mut xw) = (Vec::new(), Vec::new());
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 1.0)).collect();
        for k in 0..12 {
            let t = build(0.1 + 0.3 * k as f64);
            program.refactor(&t, &mut scratch).unwrap();
            SparseLu::refactor_into(&t, &order, &mut ws).unwrap();
            let rel = ((scratch.det() - ws.det()).norm() / ws.det().norm()).to_f64();
            assert!(rel < 1e-13, "sweep step {k}: det rel {rel:.2e}");
            program.solve_into(&mut scratch, &b, &mut x);
            ws.solve_into(&b, &mut xw);
            for (p, q) in x.iter().zip(&xw) {
                assert!((*p - *q).abs() < 1e-12, "sweep step {k}");
            }
        }
    }

    /// A cyclic bidiagonal pattern fills in a cascade under diagonal
    /// pivoting: eliminating `(0,0)` fills `(n−1,1)`, eliminating `(1,1)`
    /// fills `(n−1,2)`, and so on. The compiled program must discover every
    /// fill slot at compile time and still match the workspace replay.
    #[test]
    fn fill_in_cascade_is_precompiled() {
        let n = 8;
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, Complex::real(4.0 + i as f64));
            t.add(i, (i + 1) % n, Complex::real(1.0));
        }
        let lu = SparseLu::factor(&t).unwrap();
        let program = FactorProgram::for_triplets(&t, lu.order()).unwrap();
        assert_eq!(program.fill_in(), lu.fill_in(), "compile-time fill matches numeric fill");
        assert!(program.fill_in() > 0, "cyclic pattern must fill");
        assert!(program.op_count() > 0);

        let mut scratch = ProgramScratch::new();
        let mut ws = LuWorkspace::new();
        program.refactor(&t, &mut scratch).unwrap();
        SparseLu::refactor_into(&t, lu.order(), &mut ws).unwrap();
        let rel = ((scratch.det() - ws.det()).norm() / ws.det().norm()).to_f64();
        assert!(rel < 1e-13, "det rel {rel:.2e}");
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(1.0, i as f64)).collect();
        let (mut x, mut xw) = (Vec::new(), Vec::new());
        program.solve_into(&mut scratch, &b, &mut x);
        ws.solve_into(&b, &mut xw);
        for (p, q) in x.iter().zip(&xw) {
            assert!((*p - *q).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_entries_accumulate_through_stamp_map() {
        let mut a = Triplets::new(2);
        a.add(0, 0, Complex::real(1.0));
        a.add(0, 0, Complex::real(1.0)); // accumulates: a00 = 2
        a.add(0, 1, Complex::real(1.0));
        a.add(1, 1, Complex::real(3.0));
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let mut scratch = ProgramScratch::new();
        program.refactor(&a, &mut scratch).unwrap();
        assert!((scratch.det().to_complex() - Complex::real(6.0)).abs() < 1e-12);
    }

    #[test]
    fn singular_replay_reports_same_step_and_scratch_recovers() {
        let a = tri(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let zeroed = tri(2, &[(0, 0, 0.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 0.0)]);
        let mut scratch = ProgramScratch::new();
        let got = program.refactor(&zeroed, &mut scratch);
        let want = SparseLu::refactor(&zeroed, &order);
        match (got, want) {
            (Err(FactorError::Singular { step: a }), Err(FactorError::Singular { step: b })) => {
                assert_eq!(a, b, "error parity: same failing elimination step");
            }
            other => panic!("expected matching Singular, got {other:?}"),
        }
        // The same scratch stays usable afterwards.
        program.refactor(&a, &mut scratch).unwrap();
        assert!((scratch.det().to_complex() - Complex::real(-2.0)).abs() < 1e-12);
    }

    #[test]
    fn structurally_absent_pivot_fails_at_compile_time() {
        // An order recorded for a denser pattern dies symbolically on a
        // sparser one — at compile time, not at every numeric point.
        let dense = tri(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        let order = SparseLu::factor(&dense).unwrap().order().clone();
        let sparse = tri(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let positions: Vec<(usize, usize)> =
            sparse.entries().iter().map(|&(r, c, _)| (r, c)).collect();
        match FactorProgram::compile(2, &positions, &order) {
            Ok(_) => {
                // The dense order may happen to pivot down the diagonal, in
                // which case compiling succeeds — accept either, but a
                // compiled program must then replay fine.
            }
            Err(FactorError::Singular { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = tri(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        assert!(matches!(
            FactorProgram::compile(3, &[(0, 0), (1, 1), (2, 2)], &order),
            Err(FactorError::OrderMismatch { expected: 2, actual: 3 })
        ));
    }

    #[test]
    fn dim_zero_program() {
        let t = Triplets::new(0);
        let order = SparseLu::factor(&t).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&t, &order).unwrap();
        let mut scratch = ProgramScratch::new();
        program.refactor(&t, &mut scratch).unwrap();
        assert_eq!(scratch.det().to_complex(), Complex::ONE);
        let mut x = Vec::new();
        program.solve_into(&mut scratch, &[], &mut x);
        assert!(x.is_empty());
    }

    #[test]
    #[should_panic]
    fn too_many_values_panics() {
        let a = tri(1, &[(0, 0, 2.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let _ = program.refactor_values([Complex::ONE, Complex::ONE], &mut ProgramScratch::new());
    }

    #[test]
    #[should_panic(expected = "value count differs")]
    fn too_few_values_panics() {
        let a = tri(2, &[(0, 0, 2.0), (1, 1, 2.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let _ = program.refactor_values([Complex::ONE], &mut ProgramScratch::new());
    }

    /// The arrow-matrix sweep again, now driven five-lanes-at-a-time (odd
    /// count: the AVX path's tail lane is exercised). Every lane must match
    /// its one-lane replay bit for bit — determinant and solution vector.
    #[test]
    fn batched_replay_is_bit_identical_to_one_lane() {
        let n = 10;
        let build = |w: f64| {
            let mut t = Triplets::new(n);
            for i in 0..n {
                t.add(i, i, Complex::new(2.0 + i as f64, w));
            }
            for i in 1..n {
                t.add(0, i, Complex::real(1.0));
                t.add(i, 0, Complex::new(0.5, -w));
            }
            t
        };
        let order = SparseLu::factor(&build(0.1)).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&build(0.1), &order).unwrap();
        let ws: Vec<f64> = (0..5).map(|k| 0.1 + 0.3 * k as f64).collect();
        let mats: Vec<Triplets> = ws.iter().map(|&w| build(w)).collect();

        let mut batch = BatchScratch::new();
        program.refactor_batch(
            mats.iter().map(|m| m.entries().iter().map(|&(_, _, v)| v)),
            &mut batch,
        );
        assert_eq!(batch.lanes(), 5);
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 1.0)).collect();
        let mut brhs = Vec::new();
        for &v in &b {
            brhs.extend(std::iter::repeat_n(v, 5));
        }
        let mut bx = Vec::new();
        program.solve_batch(&mut batch, &brhs, &mut bx);

        let mut scratch = ProgramScratch::new();
        let mut x = Vec::new();
        for (lane, m) in mats.iter().enumerate() {
            program.refactor(m, &mut scratch).unwrap();
            assert_eq!(batch.singular_step(lane), None);
            assert_eq!(
                format!("{:?}", batch.lane_det(lane).unwrap()),
                format!("{:?}", scratch.det()),
                "lane {lane} det bits"
            );
            program.solve_into(&mut scratch, &b, &mut x);
            for (col, &want) in x.iter().enumerate() {
                let got = bx[col * 5 + lane];
                assert_eq!(
                    (got.re.to_bits(), got.im.to_bits()),
                    (want.re.to_bits(), want.im.to_bits()),
                    "lane {lane} col {col}"
                );
            }
        }
    }

    /// A lane that hits an exact-zero pivot dies alone: its recorded step
    /// matches the one-lane `Singular` error, and the surviving lanes stay
    /// bit-identical to their one-lane replays.
    #[test]
    fn dead_lane_is_isolated_and_reports_one_lane_step() {
        let a = tri(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let zeroed = tri(2, &[(0, 0, 0.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 0.0)]);
        let lanes = [&a, &zeroed, &a];

        let mut batch = BatchScratch::new();
        program.refactor_batch(
            lanes.iter().map(|m| m.entries().iter().map(|&(_, _, v)| v)),
            &mut batch,
        );
        let mut scratch = ProgramScratch::new();
        let want_step = match program.refactor(&zeroed, &mut scratch) {
            Err(FactorError::Singular { step }) => step,
            other => panic!("expected singular one-lane replay, got {other:?}"),
        };
        assert_eq!(batch.singular_step(1), Some(want_step));
        assert!(
            matches!(batch.lane_det(1), Err(FactorError::Singular { step }) if step == want_step)
        );
        program.refactor(&a, &mut scratch).unwrap();
        for lane in [0, 2] {
            assert_eq!(batch.singular_step(lane), None);
            assert_eq!(
                format!("{:?}", batch.lane_det(lane).unwrap()),
                format!("{:?}", scratch.det()),
                "surviving lane {lane}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_batch_panics() {
        let a = tri(1, &[(0, 0, 2.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let none: [[Complex; 1]; 0] = [];
        program.refactor_batch(none, &mut BatchScratch::new());
    }

    #[test]
    #[should_panic(expected = "no factorization")]
    fn solve_before_replay_panics() {
        let a = tri(1, &[(0, 0, 1.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        program.solve_into(&mut ProgramScratch::new(), &[Complex::ONE], &mut Vec::new());
    }
}
