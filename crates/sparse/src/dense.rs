//! Dense complex matrices — reference implementation and test oracle.
//!
//! Circuit matrices in this workspace are solved by the sparse LU in
//! [`crate::lu`]; the dense path exists to cross-check it (same answers,
//! different code), to provide a brute-force cofactor determinant for tiny
//! systems, and to serve examples that don't care about performance.

use refgen_numeric::{Complex, ExtComplex};

/// A dense square complex matrix in row-major storage.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    dim: usize,
    data: Vec<Complex>,
}

impl DenseMatrix {
    /// Creates a `dim × dim` zero matrix.
    pub fn zeros(dim: usize) -> Self {
        DenseMatrix { dim, data: vec![Complex::ZERO; dim * dim] }
    }

    /// Creates the identity matrix.
    pub fn identity(dim: usize) -> Self {
        let mut m = DenseMatrix::zeros(dim);
        for i in 0..dim {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Builds from a row-major nested array of real values (test helper).
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        let dim = rows.len();
        let mut m = DenseMatrix::zeros(dim);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), dim, "row {i} has wrong length");
            for (j, &v) in r.iter().enumerate() {
                m.set(i, j, Complex::real(v));
            }
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Complex {
        assert!(row < self.dim && col < self.dim);
        self.data[row * self.dim + col]
    }

    /// Sets element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Complex) {
        assert!(row < self.dim && col < self.dim);
        self.data[row * self.dim + col] = value;
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.dim);
        (0..self.dim).map(|i| (0..self.dim).map(|j| self.get(i, j) * x[j]).sum()).collect()
    }

    /// Determinant through LU with partial pivoting, accumulated in extended
    /// range (no overflow for pivot products spanning hundreds of decades).
    ///
    /// Returns [`ExtComplex::ZERO`] for singular matrices.
    pub fn det(&self) -> ExtComplex {
        let mut a = self.clone();
        let n = self.dim;
        let mut det = ExtComplex::ONE;
        for k in 0..n {
            // Partial pivoting on column k.
            let mut piv = k;
            let mut best = a.get(k, k).abs();
            for r in (k + 1)..n {
                let v = a.get(r, k).abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best == 0.0 {
                return ExtComplex::ZERO;
            }
            if piv != k {
                for c in 0..n {
                    let tmp = a.get(k, c);
                    a.set(k, c, a.get(piv, c));
                    a.set(piv, c, tmp);
                }
                det = -det;
            }
            let pivot = a.get(k, k);
            det *= ExtComplex::from_complex(pivot);
            for r in (k + 1)..n {
                let f = a.get(r, k) / pivot;
                if f == Complex::ZERO {
                    continue;
                }
                for c in k..n {
                    let v = a.get(r, c) - f * a.get(k, c);
                    a.set(r, c, v);
                }
            }
        }
        det
    }

    /// Solves `A·x = b` through LU with partial pivoting.
    ///
    /// Returns `None` if the matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim`.
    pub fn solve(&self, b: &[Complex]) -> Option<Vec<Complex>> {
        assert_eq!(b.len(), self.dim);
        let n = self.dim;
        let mut a = self.clone();
        let mut x = b.to_vec();
        for k in 0..n {
            let mut piv = k;
            let mut best = a.get(k, k).abs();
            for r in (k + 1)..n {
                let v = a.get(r, k).abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best == 0.0 {
                return None;
            }
            if piv != k {
                for c in 0..n {
                    let tmp = a.get(k, c);
                    a.set(k, c, a.get(piv, c));
                    a.set(piv, c, tmp);
                }
                x.swap(k, piv);
            }
            let pivot = a.get(k, k);
            for r in (k + 1)..n {
                let f = a.get(r, k) / pivot;
                if f == Complex::ZERO {
                    continue;
                }
                for c in k..n {
                    let v = a.get(r, c) - f * a.get(k, c);
                    a.set(r, c, v);
                }
                x[r] = x[r] - f * x[k];
            }
        }
        // Back substitution (index form mirrors the math; the row slice
        // and solution vector advance together).
        #[allow(clippy::needless_range_loop)]
        for k in (0..n).rev() {
            let mut s = x[k];
            for c in (k + 1)..n {
                s -= a.get(k, c) * x[c];
            }
            x[k] = s / a.get(k, k);
        }
        Some(x)
    }

    /// Brute-force determinant by cofactor expansion — `O(n!)`, intended as
    /// an oracle for `n ≤ 8`.
    ///
    /// # Panics
    ///
    /// Panics if `dim > 9` (would take absurdly long).
    pub fn det_cofactor(&self) -> ExtComplex {
        assert!(self.dim <= 9, "cofactor determinant is O(n!)");
        let idx: Vec<usize> = (0..self.dim).collect();
        self.det_cofactor_rec(0, &idx)
    }

    fn det_cofactor_rec(&self, row: usize, cols: &[usize]) -> ExtComplex {
        if cols.is_empty() {
            return ExtComplex::ONE;
        }
        let mut acc = ExtComplex::ZERO;
        for (i, &c) in cols.iter().enumerate() {
            let a = self.get(row, c);
            if a == Complex::ZERO {
                continue;
            }
            let rest: Vec<usize> = cols.iter().copied().filter(|&x| x != c).collect();
            let minor = self.det_cofactor_rec(row + 1, &rest);
            let term = ExtComplex::from_complex(a) * minor;
            acc = if i % 2 == 0 { acc + term } else { acc - term };
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_known_values() {
        let m = DenseMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((m.det().to_complex() - Complex::real(-2.0)).abs() < 1e-13);
        assert!((DenseMatrix::identity(5).det().to_complex() - Complex::ONE).abs() < 1e-13);
    }

    #[test]
    fn det_singular_is_zero() {
        let m = DenseMatrix::from_real_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.det().is_zero());
    }

    #[test]
    fn det_matches_cofactor_oracle() {
        let m = DenseMatrix::from_real_rows(&[
            &[2.0, -1.0, 0.0, 3.0],
            &[1.0, 0.5, -2.0, 1.0],
            &[0.0, 4.0, 1.0, -1.0],
            &[3.0, 0.0, 2.0, 2.0],
        ]);
        let a = m.det();
        let b = m.det_cofactor();
        assert!(((a - b).norm() / a.norm()).to_f64() < 1e-12);
    }

    #[test]
    fn det_no_overflow_extreme_diagonal() {
        // Product of diagonal = 1e-400 — underflows f64, fine in ExtComplex.
        let mut m = DenseMatrix::identity(4);
        for i in 0..4 {
            m.set(i, i, Complex::real(1e-100));
        }
        let d = m.det();
        assert!((d.norm().log10() + 400.0).abs() < 1e-9);
    }

    #[test]
    fn solve_round_trip() {
        let m =
            DenseMatrix::from_real_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, -1.0], &[0.0, -1.0, 2.0]]);
        let x_true = vec![Complex::real(1.0), Complex::new(0.0, 2.0), Complex::real(-1.5)];
        let b = m.mul_vec(&x_true);
        let x = m.solve(&b).unwrap();
        for (a, t) in x.iter().zip(&x_true) {
            assert!((*a - *t).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_singular_returns_none() {
        let m = DenseMatrix::from_real_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(m.solve(&[Complex::ONE, Complex::ONE]).is_none());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the leading diagonal: fails without row exchange.
        let m = DenseMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve(&[Complex::real(2.0), Complex::real(3.0)]).unwrap();
        assert!((x[0] - Complex::real(3.0)).abs() < 1e-14);
        assert!((x[1] - Complex::real(2.0)).abs() < 1e-14);
    }
}
