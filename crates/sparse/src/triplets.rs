//! Coordinate-format sparse matrix assembly.

use refgen_numeric::Complex;
use std::collections::BTreeMap;

/// A square sparse matrix under assembly, in coordinate (triplet) form.
///
/// MNA stamping adds several contributions to the same position (every
/// element connected to a node stamps into that node's diagonal); duplicates
/// accumulate additively, matching that convention.
///
/// ```
/// use refgen_numeric::Complex;
/// use refgen_sparse::Triplets;
///
/// let mut t = Triplets::new(3);
/// t.add(0, 0, Complex::real(1.0));
/// t.add(0, 0, Complex::real(2.0)); // accumulates: a00 = 3
/// assert_eq!(t.to_rows()[0][&0], Complex::real(3.0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Triplets {
    dim: usize,
    entries: Vec<(usize, usize, Complex)>,
}

impl Triplets {
    /// Creates an empty `dim × dim` matrix.
    pub fn new(dim: usize) -> Self {
        Triplets { dim, entries: Vec::new() }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of raw (pre-accumulation) entries.
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` at `(row, col)`, accumulating with prior entries there.
    ///
    /// Zero values are kept (they preserve the symbolic pattern, which
    /// matters when a reused [`PivotOrder`](crate::PivotOrder) must stay
    /// valid across numeric re-evaluations).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn add(&mut self, row: usize, col: usize, value: Complex) {
        assert!(
            row < self.dim && col < self.dim,
            "entry ({row},{col}) out of range for dim {}",
            self.dim
        );
        self.entries.push((row, col, value));
    }

    /// Raw entries in insertion order.
    pub fn entries(&self) -> &[(usize, usize, Complex)] {
        &self.entries
    }

    /// Clears the matrix for reassembly at a (possibly new) dimension,
    /// keeping the entry buffer's allocation. This is what lets a sweep
    /// re-stamp the same pattern at a new frequency point with zero heap
    /// traffic (see [`LuWorkspace`](crate::LuWorkspace)).
    pub fn reset(&mut self, dim: usize) {
        self.dim = dim;
        self.entries.clear();
    }

    /// Accumulates into per-row ordered maps (the LU working format).
    pub fn to_rows(&self) -> Vec<BTreeMap<usize, Complex>> {
        let mut rows: Vec<BTreeMap<usize, Complex>> = vec![BTreeMap::new(); self.dim];
        for &(r, c, v) in &self.entries {
            *rows[r].entry(c).or_insert(Complex::ZERO) += v;
        }
        rows
    }

    /// Accumulated value at `(row, col)` (zero if absent).
    pub fn get(&self, row: usize, col: usize) -> Complex {
        self.entries.iter().filter(|&&(r, c, _)| r == row && c == col).map(|&(_, _, v)| v).sum()
    }

    /// Converts to a dense matrix (test/oracle use).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut d = crate::dense::DenseMatrix::zeros(self.dim);
        for &(r, c, v) in &self.entries {
            let cur = d.get(r, c);
            d.set(r, c, cur + v);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut t = Triplets::new(2);
        t.add(1, 0, Complex::real(1.5));
        t.add(1, 0, Complex::new(0.5, 2.0));
        assert_eq!(t.get(1, 0), Complex::new(2.0, 2.0));
        assert_eq!(t.get(0, 1), Complex::ZERO);
        assert_eq!(t.raw_len(), 2);
    }

    #[test]
    fn to_rows_sorted() {
        let mut t = Triplets::new(3);
        t.add(0, 2, Complex::ONE);
        t.add(0, 1, Complex::ONE);
        let rows = t.to_rows();
        let cols: Vec<usize> = rows[0].keys().copied().collect();
        assert_eq!(cols, vec![1, 2]);
        assert!(rows[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut t = Triplets::new(2);
        t.add(2, 0, Complex::ONE);
    }

    #[test]
    fn to_dense_matches() {
        let mut t = Triplets::new(2);
        t.add(0, 0, Complex::real(1.0));
        t.add(0, 0, Complex::real(1.0));
        t.add(1, 0, Complex::real(3.0));
        let d = t.to_dense();
        assert_eq!(d.get(0, 0), Complex::real(2.0));
        assert_eq!(d.get(1, 0), Complex::real(3.0));
        assert_eq!(d.get(1, 1), Complex::ZERO);
    }
}
