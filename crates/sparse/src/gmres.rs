//! Restarted GMRES with modified Gram–Schmidt, for nearby-point iteration.
//!
//! A frequency sweep evaluates `A(s)·x = b` at many points whose matrices
//! differ only in the `s·K₁` term. Direct replay pays a full numeric
//! refactorization per point; this module offers the iterative
//! alternative: keep the compiled factorization of one **anchor** point as
//! a preconditioner `M = A(s₀)` and solve the nearby systems with
//! left-preconditioned GMRES. Since `M⁻¹A(s) = I + (s − s₀)·M⁻¹K₁`, the
//! preconditioned spectrum is clustered around 1 for points near the
//! anchor and a handful of iterations — each one O(nnz) matvec plus one
//! back-substitution — replaces an O(fill) elimination replay.
//!
//! The implementation is deliberately scalar and sequential: modified
//! Gram–Schmidt orthogonalization, complex Givens rotations on the
//! Hessenberg column, no reductions whose order could vary. For a fixed
//! operator, right-hand side, and parameter set the iteration trace — and
//! therefore the returned solution — is a pure function of its inputs,
//! bit-identical across threads and executors (the hybrid sweep tier
//! pins this).
//!
//! **Fallback contract**: GMRES here *never* panics on stagnation; it
//! reports `converged: false` and the caller (the hybrid sweep path)
//! falls back to the direct replay for that point, so iterative evaluation
//! can only add speed, never change availability.

use refgen_numeric::Complex;

/// Tuning knobs for [`gmres_solve`].
#[derive(Clone, Copy, Debug)]
pub struct GmresParams {
    /// Krylov subspace dimension per restart cycle.
    pub restart: usize,
    /// Total iteration cap across all cycles.
    pub max_iterations: usize,
    /// Convergence target on the preconditioned residual, relative to the
    /// preconditioned right-hand side norm (or to [`GmresParams::rhs_scale`]
    /// when set).
    pub rel_tol: f64,
    /// Known norm of the preconditioned right-hand side `‖M⁻¹b‖`, or `0.0`
    /// (the default) to have [`gmres_solve`] measure it with one extra
    /// preconditioner application. A caller iterating near an anchor
    /// factorization already holds this number — the anchor solution's
    /// norm — and passing it both skips the measurement and keeps the
    /// convergence criterion *absolute*, so a warm initial guess is not
    /// penalized by a criterion relative to its own small correction.
    pub rhs_scale: f64,
}

impl Default for GmresParams {
    fn default() -> Self {
        GmresParams { restart: 24, max_iterations: 96, rel_tol: 1e-13, rhs_scale: 0.0 }
    }
}

/// What one [`gmres_solve`] call did.
#[derive(Clone, Copy, Debug)]
pub struct GmresReport {
    /// Inner iterations performed (matvec + preconditioner applications).
    pub iterations: usize,
    /// Final preconditioned relative residual estimate.
    pub residual: f64,
    /// The residual target was met.
    pub converged: bool,
}

/// Reusable buffers for repeated [`gmres_solve`] calls of one dimension.
/// All storage is capacity-retaining; steady-state solves allocate
/// nothing.
#[derive(Debug, Default)]
pub struct GmresWorkspace {
    /// Krylov basis vectors, `restart + 1` of length `n`.
    basis: Vec<Vec<Complex>>,
    /// Hessenberg columns (column-major, `restart + 1` rows per column).
    h: Vec<Complex>,
    /// Givens rotation cosines (real) and sines (complex).
    cs: Vec<f64>,
    sn: Vec<Complex>,
    /// Rotated residual vector.
    g: Vec<Complex>,
    /// Matvec / preconditioner application buffer.
    work: Vec<Complex>,
}

impl GmresWorkspace {
    /// An empty workspace; buffers size themselves on first use.
    pub fn new() -> GmresWorkspace {
        GmresWorkspace::default()
    }
}

/// Solves `A·x = b` via left-preconditioned restarted GMRES(m).
///
/// * `apply_a(v, out)` writes `A·v` into `out`.
/// * `precond(v)` applies `M⁻¹` **in place** (e.g. a compiled-program
///   back-substitution from a nearby anchor factorization).
///
/// `x` is in/out: its incoming content is the **initial guess** (callers
/// without one pass zeros; a frequency sweep passes the extrapolated
/// previous solution), and it holds the solution on return. The result is
/// a pure function of `(A, M, b, x₀, params)` — the determinism contract
/// of the hybrid sweep.
///
/// The residual reported and tested is the *preconditioned* one
/// `‖M⁻¹(b − A·x)‖ / ‖M⁻¹b‖` (the natural metric when `M` is a nearby
/// factorization: it approximates the relative error directly); the
/// denominator is measured unless [`GmresParams::rhs_scale`] supplies it.
///
/// # Panics
///
/// Panics if `x.len() != b.len()` or `params.restart == 0`.
pub fn gmres_solve(
    b: &[Complex],
    x: &mut [Complex],
    mut apply_a: impl FnMut(&[Complex], &mut [Complex]),
    mut precond: impl FnMut(&mut [Complex]),
    params: &GmresParams,
    ws: &mut GmresWorkspace,
) -> GmresReport {
    let n = b.len();
    assert_eq!(x.len(), n, "solution/rhs length mismatch");
    assert!(params.restart > 0, "restart dimension must be positive");
    let m = params.restart;

    ws.work.resize(n, Complex::ZERO);
    ws.basis.resize(m + 1, Vec::new());
    for v in &mut ws.basis {
        v.resize(n, Complex::ZERO);
    }
    ws.h.clear();
    ws.h.resize((m + 1) * m, Complex::ZERO);
    ws.cs.clear();
    ws.cs.resize(m, 0.0);
    ws.sn.clear();
    ws.sn.resize(m, Complex::ZERO);
    ws.g.clear();
    ws.g.resize(m + 1, Complex::ZERO);

    // Preconditioned RHS norm — the scale of every residual test. Measured
    // here unless the caller supplied it; with x₀ = 0 the measurement
    // doubles as the first cycle's residual M⁻¹b.
    let measured_scale = !(params.rhs_scale > 0.0 && params.rhs_scale.is_finite());
    let beta0 = if measured_scale {
        ws.work.copy_from_slice(b);
        precond(&mut ws.work);
        let beta0 = norm(&ws.work);
        if beta0 == 0.0 || !beta0.is_finite() {
            // b = 0 (x = 0 is exact) or a broken preconditioner (caller
            // falls back to the direct path).
            if beta0 == 0.0 {
                x.fill(Complex::ZERO);
            }
            return GmresReport { iterations: 0, residual: 0.0, converged: beta0 == 0.0 };
        }
        beta0
    } else {
        params.rhs_scale
    };
    let guess_zero = x.iter().all(|&z| z == Complex::ZERO);

    let mut iterations = 0usize;
    let mut cycles = 0usize;
    let mut residual;
    loop {
        // Cycle residual z = M⁻¹(b − A·x); the first cycle with a zero
        // guess reuses the M⁻¹b measurement (or recomputes it when the
        // caller supplied the scale).
        if cycles > 0 || !guess_zero {
            apply_a(x, &mut ws.work);
            for (w, &bi) in ws.work.iter_mut().zip(b) {
                *w = bi - *w;
            }
            precond(&mut ws.work);
        } else if !measured_scale {
            ws.work.copy_from_slice(b);
            precond(&mut ws.work);
        }
        let beta = norm(&ws.work);
        residual = beta / beta0;
        if !beta.is_finite() {
            return GmresReport { iterations, residual: f64::INFINITY, converged: false };
        }
        if residual <= params.rel_tol || iterations >= params.max_iterations {
            return GmresReport { iterations, residual, converged: residual <= params.rel_tol };
        }

        let inv = Complex::real(1.0 / beta);
        for (v, &w) in ws.basis[0].iter_mut().zip(ws.work.iter()) {
            *v = w * inv;
        }
        ws.g.fill(Complex::ZERO);
        ws.g[0] = Complex::real(beta);

        let mut cols = 0usize;
        let mut breakdown = false;
        for j in 0..m {
            // w = M⁻¹·A·v[j], orthogonalized against the basis (MGS).
            apply_a(&ws.basis[j], &mut ws.work);
            precond(&mut ws.work);
            for i in 0..=j {
                let hij = dot(&ws.basis[i], &ws.work);
                ws.h[j * (m + 1) + i] = hij;
                for (w, &v) in ws.work.iter_mut().zip(ws.basis[i].iter()) {
                    *w -= hij * v;
                }
            }
            let hn = norm(&ws.work);
            ws.h[j * (m + 1) + j + 1] = Complex::real(hn);
            iterations += 1;
            cols = j + 1;

            // Rotate the new column through the accumulated Givens
            // rotations, then zero its subdiagonal with a fresh one.
            for i in 0..j {
                let a = ws.h[j * (m + 1) + i];
                let b2 = ws.h[j * (m + 1) + i + 1];
                ws.h[j * (m + 1) + i] = a.scale(ws.cs[i]) + ws.sn[i] * b2;
                ws.h[j * (m + 1) + i + 1] = b2.scale(ws.cs[i]) - ws.sn[i].conj() * a;
            }
            let a = ws.h[j * (m + 1) + j];
            let b2 = ws.h[j * (m + 1) + j + 1];
            let (c, s) = givens(a, b2);
            ws.cs[j] = c;
            ws.sn[j] = s;
            ws.h[j * (m + 1) + j] = a.scale(c) + s * b2;
            ws.h[j * (m + 1) + j + 1] = Complex::ZERO;
            let gj = ws.g[j];
            ws.g[j] = gj.scale(c);
            ws.g[j + 1] = -s.conj() * gj;

            residual = ws.g[j + 1].abs() / beta0;
            let happy = hn == 0.0 || !hn.is_finite();
            if happy || residual <= params.rel_tol || iterations >= params.max_iterations {
                breakdown = happy;
                break;
            }
            let invh = Complex::real(1.0 / hn);
            // Split borrow: the new basis vector is built from `work`.
            let (src, dst) = (&ws.work, &mut ws.basis[j + 1]);
            for (v, &w) in dst.iter_mut().zip(src.iter()) {
                *v = w * invh;
            }
        }

        // y = H⁻¹·g by back substitution, then x += V·y.
        for j in (0..cols).rev() {
            let mut s = ws.g[j];
            for k in j + 1..cols {
                s -= ws.h[k * (m + 1) + j] * ws.g[k];
            }
            ws.g[j] = s / ws.h[j * (m + 1) + j];
        }
        for j in 0..cols {
            let yj = ws.g[j];
            if yj == Complex::ZERO {
                continue;
            }
            for (xi, &v) in x.iter_mut().zip(ws.basis[j].iter()) {
                *xi += yj * v;
            }
        }

        if cycles == 0 && !breakdown && residual <= params.rel_tol {
            // Converged inside the first cycle: no restart has drifted the
            // rotated residual estimate, so skip the verification
            // matvec + preconditioner application. A happy breakdown is
            // excluded — its zeroed estimate can mask a singular
            // Hessenberg head, which only the true residual exposes.
            return GmresReport { iterations, residual, converged: true };
        }
        if residual <= params.rel_tol || iterations >= params.max_iterations {
            // Recompute the true preconditioned residual once for the
            // report (the rotated estimate drifts across restarts).
            apply_a(x, &mut ws.work);
            for (w, &bi) in ws.work.iter_mut().zip(b) {
                *w = bi - *w;
            }
            precond(&mut ws.work);
            residual = norm(&ws.work) / beta0;
            return GmresReport {
                iterations,
                residual,
                converged: residual.is_finite() && residual <= params.rel_tol,
            };
        }
        cycles += 1;
    }
}

/// Euclidean norm, sequential accumulation (deterministic).
fn norm(v: &[Complex]) -> f64 {
    let mut s = 0.0f64;
    for z in v {
        s += z.abs_sq();
    }
    s.sqrt()
}

/// `⟨u, w⟩ = Σ conj(uᵢ)·wᵢ`, sequential accumulation.
fn dot(u: &[Complex], w: &[Complex]) -> Complex {
    let mut s = Complex::ZERO;
    for (a, b) in u.iter().zip(w) {
        s += a.conj() * *b;
    }
    s
}

/// Complex Givens rotation `(c, s)` with real `c` zeroing `b` in `(a, b)`:
/// `[c s; -conj(s) c]·[a; b] = [r; 0]`.
fn givens(a: Complex, b: Complex) -> (f64, Complex) {
    let na = a.abs();
    let nb = b.abs();
    if nb == 0.0 {
        return (1.0, Complex::ZERO);
    }
    if na == 0.0 {
        return (0.0, Complex::ONE);
    }
    let r = na.hypot(nb);
    let c = na / r;
    let s = a.scale(1.0 / na) * b.conj().scale(1.0 / r);
    (c, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;
    use crate::SparseLu;

    /// Deterministic tiny RNG for test matrices.
    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    /// A diagonally dominant random complex matrix and a dense apply.
    fn test_system(n: usize, seed: u64) -> (Vec<Vec<Complex>>, Vec<Complex>) {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut a = vec![vec![Complex::ZERO; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            let mut off = 0.0;
            for (j, e) in row.iter_mut().enumerate() {
                if i != j {
                    *e = Complex::new(lcg(&mut s) - 0.5, lcg(&mut s) - 0.5);
                    off += e.abs();
                }
            }
            row[i] = Complex::new(off + 1.0 + lcg(&mut s), lcg(&mut s) - 0.5);
        }
        let b = (0..n).map(|_| Complex::new(lcg(&mut s) - 0.5, lcg(&mut s) - 0.5)).collect();
        (a, b)
    }

    fn apply_dense(a: &[Vec<Complex>], v: &[Complex], out: &mut [Complex]) {
        for (o, row) in out.iter_mut().zip(a) {
            let mut acc = Complex::ZERO;
            for (&m, &x) in row.iter().zip(v) {
                acc += m * x;
            }
            *o = acc;
        }
    }

    #[test]
    fn jacobi_preconditioned_dense_solve() {
        let n = 24;
        let (a, b) = test_system(n, 7);
        let diag: Vec<Complex> = (0..n).map(|i| a[i][i]).collect();
        let mut x = vec![Complex::ZERO; n];
        let mut ws = GmresWorkspace::new();
        let report = gmres_solve(
            &b,
            &mut x,
            |v, out| apply_dense(&a, v, out),
            |v| {
                for (vi, &d) in v.iter_mut().zip(&diag) {
                    *vi /= d;
                }
            },
            &GmresParams::default(),
            &mut ws,
        );
        assert!(report.converged, "residual {:.2e}", report.residual);
        // Check against the true residual.
        let mut r = vec![Complex::ZERO; n];
        apply_dense(&a, &x, &mut r);
        let res: f64 = r.iter().zip(&b).map(|(ri, bi)| (*bi - *ri).abs_sq()).sum::<f64>().sqrt();
        let bn: f64 = b.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
        assert!(res / bn < 1e-10, "true residual {:.2e}", res / bn);
    }

    #[test]
    fn exact_preconditioner_converges_in_one_iteration() {
        // M = A makes the preconditioned operator the identity: GMRES must
        // converge immediately.
        let n = 16;
        let (a, b) = test_system(n, 3);
        let mut t = Triplets::new(n);
        for (i, row) in a.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                t.add(i, j, v);
            }
        }
        let lu = SparseLu::factor(&t).expect("dominant");
        let mut x = vec![Complex::ZERO; n];
        let mut ws = GmresWorkspace::new();
        let report = gmres_solve(
            &b,
            &mut x,
            |v, out| apply_dense(&a, v, out),
            |v| {
                let sol = lu.solve(v);
                v.copy_from_slice(&sol);
            },
            &GmresParams::default(),
            &mut ws,
        );
        assert!(report.converged && report.iterations <= 2, "{report:?}");
    }

    #[test]
    fn zero_rhs_is_exact() {
        let b = vec![Complex::ZERO; 8];
        let mut x = vec![Complex::ONE; 8];
        let mut ws = GmresWorkspace::new();
        let report = gmres_solve(&b, &mut x, |_, _| {}, |_| {}, &GmresParams::default(), &mut ws);
        assert!(report.converged && report.iterations == 0);
        assert!(x.iter().all(|&z| z == Complex::ZERO));
    }

    #[test]
    fn stagnation_reports_not_converged() {
        // A singular operator (A ≡ 0) cannot converge: the report must say
        // so instead of panicking — the hybrid path's fallback contract.
        let n = 6;
        let b = vec![Complex::ONE; n];
        let mut x = vec![Complex::ZERO; n];
        let mut ws = GmresWorkspace::new();
        let params = GmresParams { restart: 4, max_iterations: 12, ..GmresParams::default() };
        let report =
            gmres_solve(&b, &mut x, |_, out| out.fill(Complex::ZERO), |_| {}, &params, &mut ws);
        assert!(!report.converged);
        assert!(report.iterations <= params.max_iterations);
    }

    #[test]
    fn warm_guess_with_supplied_scale_converges_faster() {
        let n = 24;
        let (a, b) = test_system(n, 5);
        let diag: Vec<Complex> = (0..n).map(|i| a[i][i]).collect();
        let jacobi = |v: &mut [Complex]| {
            for (vi, &d) in v.iter_mut().zip(&diag) {
                *vi /= d;
            }
        };
        let mut ws = GmresWorkspace::new();

        let mut x_cold = vec![Complex::ZERO; n];
        let cold = gmres_solve(
            &b,
            &mut x_cold,
            |v, out| apply_dense(&a, v, out),
            jacobi,
            &GmresParams::default(),
            &mut ws,
        );
        assert!(cold.converged);

        // Warm guess: the cold solution perturbed at the 1e-6 level, with
        // the caller-supplied preconditioned-RHS scale.
        let mut scale_vec = b.clone();
        jacobi(&mut scale_vec);
        let rhs_scale = scale_vec.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
        let mut x_warm: Vec<Complex> = x_cold.iter().map(|&z| z + z.scale(1e-6)).collect();
        let warm = gmres_solve(
            &b,
            &mut x_warm,
            |v, out| apply_dense(&a, v, out),
            jacobi,
            &GmresParams { rhs_scale, ..GmresParams::default() },
            &mut ws,
        );
        assert!(warm.converged);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        for (p, q) in x_warm.iter().zip(&x_cold) {
            assert!((*p - *q).abs() <= 1e-9 * q.abs().max(1.0));
        }
    }

    #[test]
    fn deterministic_across_workspaces() {
        let n = 20;
        let (a, b) = test_system(n, 11);
        let diag: Vec<Complex> = (0..n).map(|i| a[i][i]).collect();
        let solve = || {
            let mut x = vec![Complex::ZERO; n];
            let mut ws = GmresWorkspace::new();
            gmres_solve(
                &b,
                &mut x,
                |v, out| apply_dense(&a, v, out),
                |v| {
                    for (vi, &d) in v.iter_mut().zip(&diag) {
                        *vi /= d;
                    }
                },
                &GmresParams::default(),
                &mut ws,
            );
            x
        };
        let x1 = solve();
        // Second run reuses nothing; bit-identical anyway.
        let x2 = solve();
        for (p, q) in x1.iter().zip(&x2) {
            assert_eq!(p.re.to_bits(), q.re.to_bits());
            assert_eq!(p.im.to_bits(), q.im.to_bits());
        }
    }
}
