//! Sparse complex linear algebra for the `refgen` workspace.
//!
//! The paper notes its algorithm "has been implemented using sparse matrix
//! techniques" — circuit matrices are extremely sparse (a handful of entries
//! per row), and the interpolation method re-factors the *same pattern* at
//! every interpolation point. This crate provides:
//!
//! * [`Triplets`] — a coordinate-format assembly container (duplicate
//!   entries accumulate, as MNA stamping produces them).
//! * [`SparseLu`] — LU factorization with Markowitz pivoting (fill-reducing,
//!   threshold-stabilized), reusable [`PivotOrder`] for fast numeric
//!   refactorization across interpolation points, solve, and a determinant
//!   accumulated as an [`ExtComplex`](refgen_numeric::ExtComplex) so products of pivots spanning
//!   hundreds of decades never overflow.
//! * [`LuWorkspace`] — the allocation-reusing steady-state path:
//!   [`SparseLu::refactor_into`] replays a recorded pivot order into
//!   retained buffers and [`LuWorkspace::solve_into`] solves without
//!   allocating, so a sweep's per-point cost is pure arithmetic.
//! * [`FactorProgram`] — the compiled symbolic kernel: fill-in pattern,
//!   slot layout, and elimination instruction stream precomputed once per
//!   `(pattern, order)`, so each numeric point is scatter-then-replay with
//!   zero sorting, searching, insertion, or allocation.
//! * [`BatchScratch`] — the batched (variant-major) execution state:
//!   [`FactorProgram::refactor_batch`] / [`FactorProgram::solve_batch`]
//!   drive N independent value sets ("lanes") through **one** traversal of
//!   the instruction stream.
//! * [`ordering`] — approximate-minimum-degree symbolic ordering over the
//!   pattern graph, the fill-reducing alternative for mesh-scale circuits.
//! * [`gmres`] — restarted, preconditioned GMRES for nearby-point
//!   iteration, the building block of the hybrid sweep path.
//! * [`dense`] — a dense LU reference implementation used as a test oracle
//!   and for tiny systems.
//!
//! # The three pivot orderings
//!
//! Three distinct orderings can govern a factorization, selected by cost:
//!
//! 1. **Probe Markowitz** — the default. One numeric
//!    [`SparseLu::factor`] records a threshold-stabilized Markowitz order;
//!    near-optimal on tree-like and op-amp-sized patterns, and numerically
//!    informed (it saw actual magnitudes). Used whenever its predicted
//!    fill is acceptable.
//! 2. **Adopted fallback** — when a recorded order hits an exact zero
//!    pivot at some point, the evaluation falls back to a fresh Markowitz
//!    factorization and (in adopting scratches) *adopts* that order for
//!    subsequent points. Purely numeric circumstance, same algorithm.
//! 3. **AMD** ([`ordering::minimum_degree`]) — purely symbolic
//!    approximate minimum degree on the symmetrized pattern. Selected when
//!    the probe order's realized fill crosses the sweep engine's
//!    threshold (mesh-scale patterns), after validating that the compiled
//!    order factors the probe point and actually reduces fill.
//!
//! # The GMRES fallback contract
//!
//! The iterative path ([`gmres::gmres_solve`]) is an *accelerator*, never
//! a point of failure: it reports non-convergence instead of panicking,
//! and every caller holds a direct factorization path to fall back to —
//! stagnation at a point costs the direct-replay price for that point,
//! nothing more. Availability is exactly that of the direct path.
//!
//! # The three phases
//!
//! Factorization work splits into phases with sharply different reuse
//! lifetimes — pay each one at the widest scope possible:
//!
//! ```text
//!                    once per          once per            once per
//!                    TOPOLOGY          (pattern, order)    POINT (σ, s)
//!                   ┌───────────────┐ ┌─────────────────┐ ┌──────────────────┐
//!  SYMBOLIC PHASE   │ Markowitz     │ │ FactorProgram:: │ │                  │
//!  (structure only) │ pivot search  │▶│ compile         │ │                  │
//!                   │ → PivotOrder  │ │ fill-in pattern │ │                  │
//!                   └───────────────┘ │ slot layout     │ │                  │
//!                                     │ stamp map       │ │                  │
//!                                     │ op stream       │ │                  │
//!                                     └─────────────────┘ │                  │
//!  NUMERIC PHASE                                          │ scatter values   │
//!  (values, no structure)                                 │ replay op stream │
//!                                                         │ → L, U, det      │
//!  SOLVE PHASE                                            │ forward replay   │
//!  (one RHS)                                              │ back-substitute  │
//!                                                         │ → x              │
//!                                                         └──────────────────┘
//!  SparseLu::factor ────────────▶ does all three per call (probe / fallback)
//!  SparseLu::refactor_into ─────▶ numeric + solve, structural tax per point
//!  FactorProgram::refactor ─────▶ numeric + solve, structure fully compiled
//! ```
//!
//! The interpolation engine factors the same pattern at dozens of points
//! per window and across whole Monte-Carlo fleets, so the per-point column
//! must contain nothing but arithmetic — that is what [`FactorProgram`]
//! guarantees by construction (its replay is a linear pass over
//! precomputed slot indices).
//!
//! # Lane layout: batching is orthogonal to threading
//!
//! The per-point column above has a second axis: one instruction stream
//! can drive N value sets at once. [`BatchScratch`] lays the slot array
//! out **slot-major** (structure-of-arrays), so the lanes one instruction
//! touches are contiguous and the fetch/decode cost of the stream is paid
//! once per batch instead of once per lane:
//!
//! ```text
//!          lane →   0    1    2   …  N−1
//!  slot 0         [v₀₀  v₀₁  v₀₂  …  ]   ← one refactor op = N fused
//!  slot 1         [v₁₀  v₁₁  v₁₂  …  ]     complex multiply-adds over
//!  slot 2         [v₂₀  v₂₁  v₂₂  …  ]     contiguous memory (AVX when
//!    ⋮                                      available, scalar otherwise)
//! ```
//!
//! The two parallel axes compose but never interact:
//!
//! * **Batching** (lanes, this crate) — N matrices per instruction
//!   traversal, inside one worker. A lane hitting a zero pivot dies alone
//!   ([`BatchScratch::singular_step`]); its neighbours are unaffected.
//! * **Threading** (`refgen_exec`) — workers each own a scratch and share
//!   the immutable program.
//!
//! **Determinism contract**: per live lane, batched execution performs the
//! exact scalar operation sequence of a one-lane replay. The vectorized
//! Smith division blend-selects each lane's branch *inputs* (dominant and
//! recessive divisor components) so one deduplicated division serves both
//! arms with the scalar arm's exact primitive ops; the vectorized update
//! and forward solve use no FMA contraction; and the vectorized
//! determinant fold reproduces the extended-range normalization with
//! exact bit-built powers of two (easy-range lanes) or the scalar
//! sequence itself (everything else). Results are **bit-identical** at
//! every lane count and thread count — the property the whole test tier
//! pins.
//!
//! # Example
//!
//! ```
//! use refgen_numeric::Complex;
//! use refgen_sparse::{SparseLu, Triplets};
//!
//! # fn main() -> Result<(), refgen_sparse::FactorError> {
//! let mut a = Triplets::new(2);
//! a.add(0, 0, Complex::real(2.0));
//! a.add(0, 1, Complex::real(1.0));
//! a.add(1, 1, Complex::real(3.0));
//! let lu = SparseLu::factor(&a)?;
//! let x = lu.solve(&[Complex::real(3.0), Complex::real(3.0)]);
//! assert!((x[0] - Complex::real(1.0)).abs() < 1e-12);
//! assert!((x[1] - Complex::real(1.0)).abs() < 1e-12);
//! assert!((lu.det().to_complex() - Complex::real(6.0)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod dense;
pub mod gmres;
pub mod lu;
pub mod ordering;
pub mod symbolic;
pub mod triplets;

pub use dense::DenseMatrix;
pub use gmres::{GmresParams, GmresReport, GmresWorkspace};
pub use lu::{FactorError, LuWorkspace, PivotOrder, SparseLu};
pub use ordering::minimum_degree;
pub use symbolic::{BatchScratch, FactorProgram, ProgramScratch};
pub use triplets::Triplets;
