//! Sparse complex linear algebra for the `refgen` workspace.
//!
//! The paper notes its algorithm "has been implemented using sparse matrix
//! techniques" — circuit matrices are extremely sparse (a handful of entries
//! per row), and the interpolation method re-factors the *same pattern* at
//! every interpolation point. This crate provides:
//!
//! * [`Triplets`] — a coordinate-format assembly container (duplicate
//!   entries accumulate, as MNA stamping produces them).
//! * [`SparseLu`] — LU factorization with Markowitz pivoting (fill-reducing,
//!   threshold-stabilized), reusable [`PivotOrder`] for fast numeric
//!   refactorization across interpolation points, solve, and a determinant
//!   accumulated as an [`ExtComplex`](refgen_numeric::ExtComplex) so products of pivots spanning
//!   hundreds of decades never overflow.
//! * [`LuWorkspace`] — the allocation-reusing steady-state path:
//!   [`SparseLu::refactor_into`] replays a recorded pivot order into
//!   retained buffers and [`LuWorkspace::solve_into`] solves without
//!   allocating, so a sweep's per-point cost is pure arithmetic.
//! * [`dense`] — a dense LU reference implementation used as a test oracle
//!   and for tiny systems.
//!
//! # Example
//!
//! ```
//! use refgen_numeric::Complex;
//! use refgen_sparse::{SparseLu, Triplets};
//!
//! # fn main() -> Result<(), refgen_sparse::FactorError> {
//! let mut a = Triplets::new(2);
//! a.add(0, 0, Complex::real(2.0));
//! a.add(0, 1, Complex::real(1.0));
//! a.add(1, 1, Complex::real(3.0));
//! let lu = SparseLu::factor(&a)?;
//! let x = lu.solve(&[Complex::real(3.0), Complex::real(3.0)]);
//! assert!((x[0] - Complex::real(1.0)).abs() < 1e-12);
//! assert!((x[1] - Complex::real(1.0)).abs() < 1e-12);
//! assert!((lu.det().to_complex() - Complex::real(6.0)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod dense;
pub mod lu;
pub mod triplets;

pub use dense::DenseMatrix;
pub use lu::{FactorError, LuWorkspace, PivotOrder, SparseLu};
pub use triplets::Triplets;
