//! Fill-reducing symbolic ordering over the sparsity pattern.
//!
//! The sweep engine's default pivot order comes from one numeric Markowitz
//! probe — locally greedy on `(row count − 1)·(col count − 1)` with a
//! stability threshold. On tree-like or op-amp-sized patterns that is
//! near-optimal, but on mesh graphs its fill-in grows super-linearly and
//! the compiled replay drowns in fill slots. This module provides the
//! classic cure: an **approximate minimum degree** (AMD-style) ordering
//! computed purely symbolically on the pattern graph, via quotient-graph
//! elimination with element absorption and the one-pass approximate
//! external-degree update.
//!
//! The ordering is *symmetric* (diagonal pivots, [`PivotOrder::diagonal`])
//! over the symmetrized pattern `A + Aᵀ`, which matches MNA matrices:
//! their pattern is structurally symmetric even where values are not
//! (controlled sources). One MNA wrinkle drives a non-standard constraint:
//! ideal-source branch rows have **no structural diagonal**, and plain
//! minimum degree would eliminate exactly those first (they have the
//! smallest degree), prescribing a pivot that does not exist. A variable
//! is therefore *eligible* only once its diagonal is structurally present
//! or has received fill — eliminating any neighbor fills `(i, i)` — which
//! is tracked exactly during the symbolic elimination.
//!
//! The result is deterministic: ties break on the lowest variable index,
//! independent of hash order (all scratch structures are index-based).
//! Consumers validate the order by compiling it
//! ([`FactorProgram::compile`](crate::FactorProgram::compile) fails if a
//! prescribed pivot is structurally absent) and comparing realized
//! [`fill_in`](crate::FactorProgram::fill_in) against the probe order's.

use crate::lu::PivotOrder;

/// Computes an approximate-minimum-degree elimination order for the given
/// pattern, as a diagonal [`PivotOrder`] consumable by
/// [`FactorProgram::compile`](crate::FactorProgram::compile).
///
/// `positions` lists the structural nonzeros `(row, col)`; duplicates and
/// diagonal entries are fine. The pattern is symmetrized internally.
///
/// The order always contains every variable. If the pattern forces an
/// ineligible elimination (a variable whose diagonal never becomes
/// structurally available — possible only on patterns no LU with that
/// pivot sequence could factor anyway), the variable is emitted last and
/// compilation of the order will report the failure.
///
/// # Panics
///
/// Panics if any position index is `≥ dim`.
pub fn minimum_degree(dim: usize, positions: &[(usize, usize)]) -> PivotOrder {
    let n = dim;
    if n == 0 {
        return PivotOrder::diagonal(Vec::new());
    }

    // --- Symmetrized adjacency (upper+lower, no diagonal, deduplicated).
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut has_diag = vec![false; n];
    for &(r, c) in positions {
        assert!(r < n && c < n, "position ({r},{c}) out of range for dim {n}");
        if r == c {
            has_diag[r] = true;
        } else {
            adj[r].push(c as u32);
            adj[c].push(r as u32);
        }
    }
    for row in &mut adj {
        row.sort_unstable();
        row.dedup();
    }

    // --- Quotient-graph state. Element `p` is created when variable `p`
    // is eliminated; `elem_bound[p]` is its boundary L_p (live variables).
    let mut var_elems: Vec<Vec<u32>> = vec![Vec::new(); n]; // E_i
    let mut elem_bound: Vec<Vec<u32>> = vec![Vec::new(); n]; // L_e
    let mut absorbed = vec![false; n];
    let mut eliminated = vec![false; n];
    let mut degree: Vec<usize> = adj.iter().map(|a| a.len()).collect();

    // Scratch: marker for set membership in the current L_p, and the
    // one-pass |L_e \ L_p| counters (w-trick), both stamped per step.
    let mut in_lp = vec![false; n];
    let mut w: Vec<i64> = vec![-1; n];
    let mut perm = Vec::with_capacity(n);

    for _step in 0..n {
        // Select the minimum-degree *eligible* variable, lowest index on
        // ties; fall back to ineligible ones only when none is eligible.
        let mut pick: Option<(bool, usize, usize)> = None;
        for i in 0..n {
            if eliminated[i] {
                continue;
            }
            let key = (!has_diag[i], degree[i], i);
            if pick.is_none_or(|best| key < best) {
                pick = Some(key);
            }
        }
        let (_, _, p) = pick.expect("an uneliminated variable remains");
        eliminated[p] = true;
        perm.push(p);

        // Form L_p = (A_p ∪ ⋃_{e ∈ E_p} L_e) \ {p}: every member is live
        // (adjacency lists and element boundaries are pruned on
        // elimination/absorption, see below).
        let mut lp: Vec<u32> = Vec::new();
        for &j in &adj[p] {
            if !in_lp[j as usize] {
                in_lp[j as usize] = true;
                lp.push(j);
            }
        }
        for &e in &var_elems[p] {
            if absorbed[e as usize] {
                continue;
            }
            for &j in &elem_bound[e as usize] {
                if j as usize != p && !in_lp[j as usize] {
                    in_lp[j as usize] = true;
                    lp.push(j);
                }
            }
            // e's live boundary is a subset of L_p ∪ {p}: absorb it.
            absorbed[e as usize] = true;
        }
        lp.sort_unstable();

        // One-pass approximate set differences: after this loop,
        // w[e] = |L_e \ L_p| for every live element touching L_p.
        for &i in &lp {
            for &e in &var_elems[i as usize] {
                if absorbed[e as usize] {
                    continue;
                }
                if w[e as usize] < 0 {
                    w[e as usize] = elem_bound[e as usize].len() as i64;
                }
                w[e as usize] -= 1;
            }
        }

        // Update each boundary variable: prune its adjacency of L_p ∪ {p}
        // (now covered by element p), compress its element list, refresh
        // the approximate external degree, and record the diagonal fill
        // the numeric update `a[i][i] -= a[i][p]·a[p][i]/a[p][p]` creates.
        for &iu in &lp {
            let i = iu as usize;
            has_diag[i] = true;
            adj[i].retain(|&j| j as usize != p && !in_lp[j as usize]);
            let mut elem_deg = 0usize;
            var_elems[i].retain(|&e| {
                if absorbed[e as usize] {
                    return false;
                }
                // |L_e \ L_p| = 0 ⇒ e's boundary is inside L_p: element p
                // supersedes it everywhere, absorb it too.
                if w[e as usize] == 0 {
                    absorbed[e as usize] = true;
                    return false;
                }
                elem_deg += w[e as usize] as usize;
                true
            });
            var_elems[i].push(p as u32);
            let d = adj[i].len() + (lp.len() - 1) + elem_deg;
            // Clamp by the exact upper bounds AMD uses: the previous
            // degree plus the new clique, and the number of live variables.
            degree[i] = d.min(degree[i] + lp.len() - 1).min(n - perm.len());
        }

        // Reset the per-step scratch (only the touched entries).
        for &i in &lp {
            in_lp[i as usize] = false;
            for &e in &var_elems[i as usize] {
                w[e as usize] = -1;
            }
        }
        elem_bound[p] = lp;
    }

    PivotOrder::diagonal(perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::FactorProgram;

    /// Dense-banded pattern of a 1-D chain (tridiagonal): any order works,
    /// natural order is fill-free, AMD must match that (zero fill).
    fn tridiagonal(n: usize) -> Vec<(usize, usize)> {
        let mut p = Vec::new();
        for i in 0..n {
            p.push((i, i));
            if i + 1 < n {
                p.push((i, i + 1));
                p.push((i + 1, i));
            }
        }
        p
    }

    /// 2-D five-point grid pattern, the classic fill-in stress case.
    fn grid(rows: usize, cols: usize) -> Vec<(usize, usize)> {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut p = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let i = idx(r, c);
                p.push((i, i));
                if c + 1 < cols {
                    p.push((i, idx(r, c + 1)));
                    p.push((idx(r, c + 1), i));
                }
                if r + 1 < rows {
                    p.push((i, idx(r + 1, c)));
                    p.push((idx(r + 1, c), i));
                }
            }
        }
        p
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(minimum_degree(0, &[]).dim(), 0);
        let o = minimum_degree(1, &[(0, 0)]);
        assert_eq!(o.rows(), &[0]);
        assert_eq!(o.cols(), &[0]);
    }

    #[test]
    fn tridiagonal_is_fill_free() {
        let pat = tridiagonal(32);
        let order = minimum_degree(32, &pat);
        let prog = FactorProgram::compile(32, &pat, &order).expect("compiles");
        assert_eq!(prog.fill_in(), 0, "minimum degree must not fill a tree");
    }

    #[test]
    fn grid_beats_natural_order() {
        let pat = grid(12, 12);
        let n = 144;
        let amd = minimum_degree(n, &pat);
        let natural = PivotOrder::diagonal((0..n).collect());
        let p_amd = FactorProgram::compile(n, &pat, &amd).expect("amd compiles");
        let p_nat = FactorProgram::compile(n, &pat, &natural).expect("natural compiles");
        assert!(
            p_amd.fill_in() * 2 < p_nat.fill_in(),
            "amd fill {} vs natural {}",
            p_amd.fill_in(),
            p_nat.fill_in()
        );
    }

    #[test]
    fn deterministic() {
        let pat = grid(9, 7);
        let a = minimum_degree(63, &pat);
        let b = minimum_degree(63, &pat);
        assert_eq!(a, b);
    }

    #[test]
    fn missing_diagonal_deferred_until_filled() {
        // Variable 2 has no structural diagonal (an ideal-source branch
        // row): degree-first would pick it first and prescribe a
        // nonexistent pivot. It must wait until a neighbor's elimination
        // fills (2,2).
        let pat = vec![(0, 0), (1, 1), (0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
        let order = minimum_degree(3, &pat);
        assert_ne!(order.rows()[0], 2, "ineligible variable picked first");
        let prog = FactorProgram::compile(3, &pat, &order).expect("order must compile");
        assert!(prog.fill_in() >= 1); // the (2,2) fill itself
    }

    #[test]
    fn duplicates_and_asymmetry_tolerated() {
        let pat = vec![(0, 0), (0, 0), (1, 1), (2, 2), (0, 2), (1, 0), (0, 1)];
        let order = minimum_degree(3, &pat);
        assert_eq!(order.dim(), 3);
        // Every variable appears exactly once (PivotOrder::diagonal
        // already asserts the permutation property).
        let mut seen = order.rows().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
