//! The [`Session`] builder: the front door to reference generation.
//!
//! A session owns everything one solve needs — circuit, transfer spec,
//! configuration, the solver to use, and an optional diagnostic observer —
//! and is assembled by method chaining:
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_core::{RefgenConfig, Session};
//! use refgen_mna::TransferSpec;
//!
//! # fn main() -> Result<(), refgen_core::RefgenError> {
//! let circuit = rc_ladder(8, 1e3, 1e-9);
//! let solution = Session::for_circuit(&circuit)
//!     .spec(TransferSpec::voltage_gain("VIN", "out"))
//!     .config(RefgenConfig::builder().verify(false).build())
//!     .solve()?;
//! assert_eq!(solution.network.denominator.degree(), Some(8));
//! # Ok(())
//! # }
//! ```

use crate::adaptive::{AdaptiveInterpolator, PolyReport};
use crate::config::RefgenConfig;
use crate::diagnostic::{NullObserver, Observer};
use crate::error::RefgenError;
use crate::fleet::{BatchSession, VariantInput};
use crate::solver::{Solution, Solver};
use crate::window::PolyKind;
use refgen_circuit::perturb::VariantSet;
use refgen_circuit::Circuit;
use refgen_mna::TransferSpec;
use refgen_numeric::ExtPoly;

/// A configured reference-generation run. See the [module docs](self).
///
/// Unless [`Session::solver`] overrides it, solving uses the paper's
/// [`AdaptiveInterpolator`] built from the session's [`RefgenConfig`].
pub struct Session<'a> {
    circuit: &'a Circuit,
    spec: Option<TransferSpec>,
    config: RefgenConfig,
    solver: Option<Box<dyn Solver + 'a>>,
    observer: Option<&'a mut dyn Observer>,
}

impl<'a> Session<'a> {
    /// Starts a session on `circuit` with default configuration.
    pub fn for_circuit(circuit: &'a Circuit) -> Self {
        Session {
            circuit,
            spec: None,
            config: RefgenConfig::default(),
            solver: None,
            observer: None,
        }
    }

    /// Sets the transfer-function specification (required before
    /// [`Session::solve`]).
    #[must_use]
    pub fn spec(mut self, spec: TransferSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Adopts the `.TF` card of a parsed netlist's
    /// [`AnalysisSpec`](refgen_circuit::AnalysisSpec) as this session's
    /// transfer-function specification, so a whole analysis can be driven
    /// from one file. A spec without a `.TF` card leaves the session
    /// unchanged (and [`Session::solve`] will report the missing spec).
    #[must_use]
    pub fn analysis(mut self, analysis: &refgen_circuit::AnalysisSpec) -> Self {
        if let Some(tf) = analysis.tf() {
            self.spec = Some(TransferSpec::from(tf));
        }
        self
    }

    /// Sets the configuration used when the session builds its own
    /// [`AdaptiveInterpolator`]. Ignored once [`Session::solver`] supplies
    /// a ready-made solver.
    #[must_use]
    pub fn config(mut self, config: RefgenConfig) -> Self {
        self.config = config;
        self
    }

    /// Uses `solver` instead of the default adaptive interpolator. Accepts
    /// any [`Solver`] by value — pass `&solver` to lend one instead.
    #[must_use]
    pub fn solver(mut self, solver: impl Solver + 'a) -> Self {
        self.solver = Some(Box::new(solver));
        self
    }

    /// Streams [`Diagnostic`](crate::Diagnostic) events to `observer`
    /// during the solve.
    #[must_use]
    pub fn observer(mut self, observer: &'a mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Turns this session into a [`BatchSession`] over a seeded fleet of
    /// same-topology variants of the session circuit — the Monte-Carlo /
    /// sensitivity entry point. Spec, config, solver and observer set on
    /// the session carry over; finish with [`BatchSession::solve_all`].
    #[must_use]
    pub fn variants(self, variants: VariantSet) -> BatchSession<'a> {
        self.into_batch(VariantInput::Generated(variants))
    }

    /// As [`Session::variants`] with caller-built variant circuits,
    /// borrowed (e.g. one-at-a-time
    /// [`scaled_variant`](refgen_circuit::perturb) probes for
    /// finite-difference sensitivities). Plan reuse engages for the
    /// same-topology ones.
    #[must_use]
    pub fn variant_circuits(self, circuits: &'a [Circuit]) -> BatchSession<'a> {
        self.into_batch(VariantInput::Explicit(circuits))
    }

    fn into_batch(self, variants: VariantInput<'a>) -> BatchSession<'a> {
        BatchSession {
            circuit: self.circuit,
            spec: self.spec,
            config: self.config,
            solver: self.solver,
            observer: self.observer,
            variants,
        }
    }

    /// Splits off what a transient run needs (used by
    /// [`Session::transient`](crate::transient)).
    pub(crate) fn into_transient_parts(self) -> (&'a Circuit, Option<&'a mut dyn Observer>) {
        (self.circuit, self.observer)
    }

    #[allow(clippy::type_complexity)]
    fn into_parts(
        self,
    ) -> Result<
        (&'a Circuit, TransferSpec, Box<dyn Solver + 'a>, Option<&'a mut dyn Observer>),
        RefgenError,
    > {
        let spec = self.spec.ok_or(RefgenError::SpecMissing)?;
        let solver = self
            .solver
            .unwrap_or_else(|| Box::new(AdaptiveInterpolator::new(self.config)) as Box<dyn Solver>);
        Ok((self.circuit, spec, solver, self.observer))
    }

    /// Runs the solve.
    ///
    /// # Errors
    ///
    /// [`RefgenError::SpecMissing`] when no [`Session::spec`] was given,
    /// otherwise whatever the selected solver reports.
    pub fn solve(self) -> Result<Solution, RefgenError> {
        let (circuit, spec, solver, observer) = self.into_parts()?;
        let mut null = NullObserver;
        solver.solve_observed(circuit, &spec, observer.unwrap_or(&mut null))
    }

    /// Recovers only one polynomial of the network function (numerator or
    /// denominator) — cheaper than [`Session::solve`] for solvers that can
    /// sample a single polynomial, and the only way to analyse circuits
    /// where the other polynomial cannot be sampled at all.
    ///
    /// # Errors
    ///
    /// See [`Session::solve`].
    pub fn solve_polynomial(self, kind: PolyKind) -> Result<(ExtPoly, PolyReport), RefgenError> {
        let (circuit, spec, solver, observer) = self.into_parts()?;
        let mut null = NullObserver;
        solver.solve_polynomial(circuit, &spec, kind, observer.unwrap_or(&mut null))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::StaticScalingSolver;
    use crate::diagnostic::{CollectObserver, Diagnostic};
    use refgen_circuit::library::rc_ladder;

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    #[test]
    fn analysis_card_drives_session() {
        // A whole analysis from one netlist: the `.TF` card supplies the
        // spec that Session::spec would otherwise hand-build.
        let netlist = refgen_circuit::parse_netlist(
            "VIN in 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n.tf V(out) VIN\n.end\n",
        )
        .unwrap();
        let solved = Session::for_circuit(&netlist.circuit)
            .analysis(&netlist.analysis)
            .solve()
            .unwrap()
            .network;
        let by_hand = Session::for_circuit(&netlist.circuit).spec(spec()).solve().unwrap().network;
        assert_eq!(solved.denominator.coeffs().len(), by_hand.denominator.coeffs().len());
        // Without a `.TF` card the spec stays unset and solve() reports it.
        let bare =
            refgen_circuit::parse_netlist("VIN in 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        assert!(matches!(
            Session::for_circuit(&bare.circuit).analysis(&bare.analysis).solve(),
            Err(RefgenError::SpecMissing)
        ));
    }

    #[test]
    fn default_session_is_adaptive() {
        let c = rc_ladder(6, 1e3, 1e-9);
        let s = Session::for_circuit(&c).spec(spec()).solve().unwrap();
        assert_eq!(s.method, "adaptive");
        assert_eq!(s.network.denominator.degree(), Some(6));
    }

    #[test]
    fn missing_spec_is_typed_error() {
        let c = rc_ladder(2, 1e3, 1e-9);
        match Session::for_circuit(&c).solve() {
            Err(RefgenError::SpecMissing) => {}
            other => panic!("expected SpecMissing, got {other:?}"),
        }
    }

    #[test]
    fn custom_solver_and_observer_chain() {
        let c = rc_ladder(4, 1e3, 1e-9);
        let mut obs = CollectObserver::new();
        let solution = Session::for_circuit(&c)
            .spec(spec())
            .solver(StaticScalingSolver::heuristic(RefgenConfig::default()))
            .observer(&mut obs)
            .solve()
            .unwrap();
        assert_eq!(solution.method, "static-scaling");
        assert!(obs.count_where(|d| matches!(d, Diagnostic::WindowOpened { .. })) >= 2);
        // Streamed events and recorded events are the same stream.
        assert_eq!(obs.events.len(), solution.diagnostics().count());
    }

    #[test]
    fn lent_solver_by_reference() {
        let c = rc_ladder(3, 1e3, 1e-9);
        let solver = AdaptiveInterpolator::default();
        let a = Session::for_circuit(&c).spec(spec()).solver(&solver).solve().unwrap();
        let b = Session::for_circuit(&c).spec(spec()).solver(&solver).solve().unwrap();
        assert_eq!(a.network.denominator.degree(), b.network.denominator.degree());
    }

    #[test]
    fn single_polynomial_path() {
        let c = rc_ladder(5, 1e3, 1e-9);
        let (poly, report) =
            Session::for_circuit(&c).spec(spec()).solve_polynomial(PolyKind::Denominator).unwrap();
        assert_eq!(poly.degree(), Some(5));
        assert_eq!(report.kind, PolyKind::Denominator);
        assert!(report.total_points > 0);
    }
}
