//! Batch sessions: Monte-Carlo / sensitivity fleets over one topology.
//!
//! A [`BatchSession`] solves a whole fleet of same-topology circuit
//! variants — generated from a seeded [`VariantSet`] or supplied
//! explicitly — through **one** [`SamplingRuntime`]: the worker pool (if
//! [`ExecutorKind::Pool`](refgen_exec::ExecutorKind::Pool) is configured)
//! spawns once for the fleet, and the shared plan cache means one pivot
//! search per scale region per *topology*, not per variant. Progress is
//! streamed as [`Diagnostic::VariantSolved`] events, and the aggregate
//! [`BatchReport`] carries per-coefficient mean/variance plus the
//! per-variant cost accounting.
//!
//! With more than one worker thread (and the default solver), the fleet
//! runs **variant-major**: variants are chunked into lane-width batches
//! and fanned across the runtime's executor, each worker solving its
//! variants through a single-threaded
//! [`SamplingRuntime::variant_worker`] runtime that shares the fleet's
//! plan cache. Inside each variant, `config.lane_width` unit-circle
//! points replay the compiled kernel per instruction-stream traversal
//! (see `refgen_sparse::BatchScratch`'s lane layout). The two axes
//! compose but never interact with results.
//!
//! Determinism: variants are generated and solved in order from a fixed
//! seed, every sampling batch and every variant batch collects in index
//! order, per-variant diagnostics are replayed to the observer in
//! variant order, and both pivot-order replay and batched lane replay
//! are value-exact — so a batch run is **bit-identical** at any thread
//! count, under either executor kind, at any lane width
//! (`tests/fleet_oracle.rs` asserts it against closed-form statistics).
//!
//! Fault containment: under the default
//! [`FaultPolicy::FailFast`](crate::FaultPolicy) a fleet is
//! all-or-nothing — the first failing variant's error aborts the run.
//! Under [`FaultPolicy::Contain`](crate::FaultPolicy) each variant's
//! failure (a typed solve error, or a quarantined panic) becomes a
//! [`VariantOutcome::Failed`] entry and the fleet keeps going; the
//! [`BatchReport`] then aggregates over the survivors only, with the
//! failed indices accounted exactly in
//! [`BatchReport::failed_variants`]. Containment never perturbs
//! surviving variants: their solutions, diagnostics, and accounting are
//! bit-identical to a fleet that never contained the failed circuits
//! (`tests/fault_containment.rs` pins this across thread counts,
//! executors, and lane widths).
//!
//! # Example
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_circuit::perturb::{ElementClass, Perturbation, VariantSet};
//! use refgen_core::Session;
//! use refgen_mna::TransferSpec;
//!
//! # fn main() -> Result<(), refgen_core::RefgenError> {
//! let base = rc_ladder(4, 1e3, 1e-9);
//! let tolerances = Perturbation::new()
//!     .relative(ElementClass::Resistors, 0.05)
//!     .relative(ElementClass::Capacitors, 0.10);
//! let run = Session::for_circuit(&base)
//!     .spec(TransferSpec::voltage_gain("VIN", "out"))
//!     .variants(VariantSet::new(tolerances, 16).seed(7))
//!     .solve_all()?;
//! assert_eq!(run.solutions().len(), 16);
//! assert_eq!(run.report.variants, 16);
//! // Every variant recovered the full 4th-order denominator…
//! assert!(run.solutions().iter().all(|s| s.network.denominator.degree() == Some(4)));
//! // …and the per-coefficient spread is available directly.
//! assert!(run.report.denominator[1].variance > 0.0);
//! # Ok(())
//! # }
//! ```

use crate::adaptive::AdaptiveInterpolator;
use crate::config::{FaultPolicy, RefgenConfig};
use crate::diagnostic::{Diagnostic, NullObserver, Observer};
use crate::error::RefgenError;
use crate::runtime::SamplingRuntime;
use crate::solver::{Solution, Solver};
use refgen_circuit::perturb::VariantSet;
use refgen_circuit::Circuit;
use refgen_exec::JobPanic;
use refgen_mna::{faults, MnaError, TransferSpec};

/// Where a batch session's fleet comes from.
pub(crate) enum VariantInput<'a> {
    /// Generate from a seeded tolerance recipe at solve time.
    Generated(VariantSet),
    /// Caller-supplied circuits, borrowed (the session never needs
    /// ownership). They should share the base circuit's topology for plan
    /// reuse to engage; differing topologies still solve correctly, each
    /// paying its own pivot searches (the plan cache keys on the sparsity
    /// pattern, never just the dimension).
    Explicit(&'a [Circuit]),
}

/// A configured fleet solve. Built by
/// [`Session::variants`](crate::Session::variants) /
/// [`Session::variant_circuits`](crate::Session::variant_circuits); see
/// the [module docs](self) for the example and guarantees.
pub struct BatchSession<'a> {
    pub(crate) circuit: &'a Circuit,
    pub(crate) spec: Option<TransferSpec>,
    pub(crate) config: RefgenConfig,
    pub(crate) solver: Option<Box<dyn Solver + 'a>>,
    pub(crate) observer: Option<&'a mut dyn Observer>,
    pub(crate) variants: VariantInput<'a>,
}

/// Mean/variance of one recovered coefficient across a fleet
/// (population statistics, computed on the real parts in `f64` — the
/// imaginary parts of recovered coefficients are round-off diagnostics).
///
/// Coefficients of extreme-range circuits (beyond `f64`'s ~±308 decades,
/// e.g. deep µA741 tails) flush to zero in these statistics; the
/// underlying [`Solution`]s keep full extended-range precision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoeffStats {
    /// Sample mean.
    pub mean: f64,
    /// Population variance (`Σ(x−mean)²/n`).
    pub variance: f64,
}

impl CoeffStats {
    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Aggregate outcome of a [`BatchSession::solve_all`] fleet.
///
/// All per-variant vectors and all coefficient moments range over the
/// **surviving** variants only (in fleet order); contained failures are
/// accounted exactly through [`BatchReport::variants_attempted`] and
/// [`BatchReport::failed_variants`]. Under
/// [`FaultPolicy::FailFast`](crate::FaultPolicy) every attempted variant
/// survives, so `variants == variants_attempted` and `failed_variants`
/// is empty.
#[derive(Clone, Debug)]
#[must_use = "fleet accounting is the fault-containment ledger — read it or drop it explicitly"]
pub struct BatchReport {
    /// Number of variants solved (the survivors).
    pub variants: usize,
    /// Number of variants the fleet attempted, including contained
    /// failures: `variants + failed_variants.len()`.
    pub variants_attempted: usize,
    /// Fleet indices of the variants that failed under
    /// [`FaultPolicy::Contain`](crate::FaultPolicy), ascending. Empty
    /// under `FailFast` (the first failure aborts the run instead).
    pub failed_variants: Vec<usize>,
    /// Per-coefficient statistics of the denominator polynomials
    /// (ascending powers; fleets whose variants disagree on degree are
    /// padded with zeros to the longest).
    pub denominator: Vec<CoeffStats>,
    /// Per-coefficient statistics of the numerator polynomials.
    pub numerator: Vec<CoeffStats>,
    /// Interpolation points each variant's solve spent, in fleet order.
    pub variant_points: Vec<usize>,
    /// Pivot-order reuses (refactorization hits) per variant, in fleet
    /// order — the per-variant totals behind every
    /// [`Diagnostic::SamplingBatched`] stream, summing to
    /// [`BatchReport::total_refactor_hits`].
    pub variant_refactor_hits: Vec<u64>,
    /// Fleet-wide pivot-order reuses.
    pub total_refactor_hits: u64,
    /// Full Markowitz pivot searches the fleet performed (probe
    /// factorizations through the shared plan cache). Plan reuse drives
    /// this toward the number of distinct window-scale regions of **one**
    /// solve — independent of fleet size.
    pub pivot_searches: usize,
    /// Plan builds that reused a recorded pivot order instead of probing.
    pub shared_plan_hits: usize,
    /// Symbolic `FactorProgram`s compiled across the fleet. Same-topology
    /// fleets compile exactly one and replay it for every variant.
    pub programs_compiled: usize,
}

/// What one variant of a fleet produced.
///
/// Under [`FaultPolicy::FailFast`](crate::FaultPolicy) (the default)
/// every outcome of a returned [`BatchRun`] is `Solved` — a failure
/// aborts `solve_all` instead. Under
/// [`FaultPolicy::Contain`](crate::FaultPolicy) failed variants are
/// carried here, in place, with the error, the failing evaluation point
/// (when the solve died per-point), and the recovery-ladder rung
/// reached.
#[derive(Debug)]
pub enum VariantOutcome {
    /// The variant solved completely. Boxed: a [`Solution`] carries its
    /// full diagnostic trail, which would otherwise dominate the size of
    /// every `Failed` entry in the outcome vector.
    Solved(Box<Solution>),
    /// The variant failed and was contained; the rest of the fleet is
    /// unaffected.
    Failed {
        /// The typed failure. A quarantined panic arrives as
        /// [`RefgenError::VariantPanicked`]; an exhausted
        /// singular-recovery ladder as
        /// [`RefgenError::Mna`]`(`[`MnaError::Unrecoverable`]`)`.
        error: RefgenError,
        /// The evaluation point the solve died at, when the failure was
        /// per-point ([`MnaError::Unrecoverable`]); `None` for
        /// session-level failures and quarantined panics.
        point: Option<String>,
        /// Recovery-ladder rungs exhausted before the failure (3 when
        /// the full ladder ran dry; 0 when the failure never entered
        /// the ladder).
        rung: u8,
    },
}

impl VariantOutcome {
    /// The solution, if this variant solved.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            VariantOutcome::Solved(s) => Some(s),
            VariantOutcome::Failed { .. } => None,
        }
    }

    /// `true` for [`VariantOutcome::Solved`].
    pub fn is_solved(&self) -> bool {
        matches!(self, VariantOutcome::Solved(_))
    }

    /// The error, if this variant failed.
    pub fn error(&self) -> Option<&RefgenError> {
        match self {
            VariantOutcome::Solved(_) => None,
            VariantOutcome::Failed { error, .. } => Some(error),
        }
    }

    /// Wraps a failure, extracting per-point provenance from
    /// [`MnaError::Unrecoverable`] errors.
    fn failed(error: RefgenError) -> VariantOutcome {
        let (point, rung) = match &error {
            RefgenError::Mna(MnaError::Unrecoverable { at, rung, .. }) => (Some(at.clone()), *rung),
            _ => (None, 0),
        };
        VariantOutcome::Failed { error, point, rung }
    }
}

/// Everything a finished fleet produced: one [`VariantOutcome`] per
/// attempted variant, in fleet order, plus the aggregate
/// [`BatchReport`].
#[derive(Debug)]
pub struct BatchRun {
    /// One outcome per attempted variant, in fleet order. All `Solved`
    /// except under [`FaultPolicy::Contain`](crate::FaultPolicy) with
    /// actual failures.
    pub outcomes: Vec<VariantOutcome>,
    /// Aggregate statistics and cost accounting (over the survivors).
    pub report: BatchReport,
}

impl BatchRun {
    /// The surviving solutions, in fleet order. Under the default
    /// [`FaultPolicy::FailFast`](crate::FaultPolicy) this is every
    /// variant.
    pub fn solutions(&self) -> Vec<&Solution> {
        self.outcomes.iter().filter_map(VariantOutcome::solution).collect()
    }
}

impl<'a> BatchSession<'a> {
    /// Solves every variant, in order, through one shared runtime.
    ///
    /// The session's solver (default: the adaptive interpolator built
    /// from the session config) runs once per variant via
    /// [`Solver::solve_with_runtime`]; after each variant a
    /// [`Diagnostic::VariantSolved`] is streamed to the session observer.
    ///
    /// # Errors
    ///
    /// [`RefgenError::SpecMissing`] without a spec;
    /// [`RefgenError::EmptyFleet`] for a zero-variant fleet;
    /// variant-generation failures as [`RefgenError::Mna`]. Under the
    /// default [`FaultPolicy::FailFast`](crate::FaultPolicy), the first
    /// failing variant's error (fleet solves are all-or-nothing — a
    /// legitimately unsolvable variant is a modeling problem the caller
    /// should see, not a silently shortened fleet). Under
    /// [`FaultPolicy::Contain`](crate::FaultPolicy) per-variant failures
    /// — including quarantined solve panics — never abort the fleet;
    /// they are returned in place as [`VariantOutcome::Failed`].
    pub fn solve_all(self) -> Result<BatchRun, RefgenError> {
        let spec = self.spec.ok_or(RefgenError::SpecMissing)?;
        let generated;
        let circuits: &[Circuit] = match self.variants {
            VariantInput::Generated(vs) => {
                generated = vs
                    .generate(self.circuit)
                    .map_err(|e| RefgenError::Mna(MnaError::Circuit(e)))?;
                &generated
            }
            VariantInput::Explicit(circuits) => circuits,
        };
        if circuits.is_empty() {
            return Err(RefgenError::EmptyFleet);
        }
        let contain = self.config.fault_policy == FaultPolicy::Contain;
        let custom_solver = self.solver.is_some();
        let mut null = NullObserver;
        let observer: &mut dyn Observer = match self.observer {
            Some(o) => o,
            None => &mut null,
        };

        // One runtime for the fleet: pool threads spawn here (once), and
        // the plan cache accumulates pivot orders across every variant.
        let runtime = SamplingRuntime::new(&self.config);
        let threads = refgen_exec::resolve_threads(self.config.threads);
        let mut outcomes = Vec::with_capacity(circuits.len());
        if !custom_solver && circuits.len() > 1 && threads > 1 {
            // Variant-major fan-out: whole variants are the unit of
            // parallelism. Each worker solves its variants through a
            // single-threaded [`SamplingRuntime::variant_worker`] runtime
            // (plan cache shared with the fleet), so the per-variant solve
            // is the sequential solve bit for bit; diagnostics are
            // replayed to the session observer in variant order
            // afterwards. A custom solver (`Box<dyn Solver>` is not
            // `Sync`) or an effectively single-threaded configuration
            // keeps the plain sequential loop below.
            let mut inner_config = self.config;
            inner_config.threads = 1;
            inner_config.executor = refgen_exec::ExecutorKind::Scoped;

            // Variant 0 solves inline first: it warms the shared plan
            // cache so the fanned workers replay recorded pivot orders
            // instead of queueing on the probe lock.
            let first = solve_one(
                &AdaptiveInterpolator::new(inner_config),
                0,
                &circuits[0],
                &spec,
                &mut NullObserver,
                &runtime.variant_worker(),
                contain,
            );

            // Remaining variants in lane-width batches — one batch per
            // worker slot, collected in index order. Chunk `i` covers
            // variants `1 + i·lane ..`, so fault scopes carry the true
            // fleet index onto the worker thread.
            let lane = self.config.lane_width.max(1);
            let chunks: Vec<&[Circuit]> = circuits[1..].chunks(lane).collect();
            let worker_runtimes: Vec<SamplingRuntime> =
                chunks.iter().map(|_| runtime.variant_worker()).collect();
            let solve_chunk = |i: usize, chunk: &&[Circuit]| {
                let solver = AdaptiveInterpolator::new(inner_config);
                let mut sink = NullObserver;
                chunk
                    .iter()
                    .enumerate()
                    .map(|(j, circuit)| {
                        solve_one(
                            &solver,
                            1 + i * lane + j,
                            circuit,
                            &spec,
                            &mut sink,
                            &worker_runtimes[i],
                            contain,
                        )
                    })
                    .collect::<Vec<Result<Solution, RefgenError>>>()
            };
            let fanned: Vec<Vec<Result<Solution, RefgenError>>> = if contain {
                // Contained dispatch: per-variant quarantine happens
                // inside `solve_one`; the executor-level backstop turns a
                // panic escaping the chunk machinery itself into typed
                // failures for the whole chunk instead of unwinding the
                // fleet.
                runtime
                    .executor()
                    .try_par_map_indexed(
                        &chunks,
                        || (),
                        |i, chunk, _: &mut ()| solve_chunk(i, chunk),
                    )
                    .into_iter()
                    .enumerate()
                    .map(|(i, chunk_result)| {
                        chunk_result.unwrap_or_else(|panic: JobPanic| {
                            chunks[i]
                                .iter()
                                .map(|_| {
                                    Err(RefgenError::VariantPanicked {
                                        message: panic.message.clone(),
                                    })
                                })
                                .collect()
                        })
                    })
                    .collect()
            } else {
                runtime.executor().par_map_indexed(
                    &chunks,
                    || (),
                    |i, chunk, _: &mut ()| solve_chunk(i, chunk),
                )
            };

            // Deterministic collection: variant order, lowest-index error
            // wins under FailFast. The recorded diagnostic trail of each
            // solution is replayed to the session observer so the
            // observable stream matches a sequential run event for event.
            for (variant, result) in
                std::iter::once(first).chain(fanned.into_iter().flatten()).enumerate()
            {
                match result {
                    Ok(solution) => {
                        for diagnostic in solution.diagnostics() {
                            observer.on_diagnostic(diagnostic);
                        }
                        observer.on_diagnostic(&Diagnostic::VariantSolved {
                            variant,
                            total_points: solution.total_points(),
                            refactor_hits: solution.refactor_hits(),
                        });
                        outcomes.push(VariantOutcome::Solved(Box::new(solution)));
                    }
                    Err(error) if contain => outcomes.push(VariantOutcome::failed(error)),
                    Err(error) => return Err(error),
                }
            }
        } else {
            let solver = self.solver.unwrap_or_else(|| {
                Box::new(AdaptiveInterpolator::new(self.config)) as Box<dyn Solver>
            });
            for (variant, circuit) in circuits.iter().enumerate() {
                match solve_one(
                    solver.as_ref(),
                    variant,
                    circuit,
                    &spec,
                    observer,
                    &runtime,
                    contain,
                ) {
                    Ok(solution) => {
                        observer.on_diagnostic(&Diagnostic::VariantSolved {
                            variant,
                            total_points: solution.total_points(),
                            refactor_hits: solution.refactor_hits(),
                        });
                        outcomes.push(VariantOutcome::Solved(Box::new(solution)));
                    }
                    Err(error) if contain => outcomes.push(VariantOutcome::failed(error)),
                    Err(error) => return Err(error),
                }
            }
        };

        // The report ranges over the survivors only, in fleet order —
        // which makes every survivor-side figure identical to a
        // fault-free run of just the surviving circuits.
        let solved: Vec<&Solution> = outcomes.iter().filter_map(VariantOutcome::solution).collect();
        let failed_variants: Vec<usize> =
            outcomes.iter().enumerate().filter(|(_, o)| !o.is_solved()).map(|(i, _)| i).collect();
        let report = BatchReport {
            variants: solved.len(),
            variants_attempted: outcomes.len(),
            failed_variants,
            denominator: coefficient_stats(&solved, |s| s.network.denominator.coeffs()),
            numerator: coefficient_stats(&solved, |s| s.network.numerator.coeffs()),
            variant_points: solved.iter().map(|s| s.total_points()).collect(),
            variant_refactor_hits: solved.iter().map(|s| s.refactor_hits()).collect(),
            total_refactor_hits: solved.iter().map(|s| s.refactor_hits()).sum(),
            pivot_searches: runtime.pivot_searches(),
            shared_plan_hits: runtime.shared_plan_hits(),
            programs_compiled: runtime.programs_compiled(),
        };
        Ok(BatchRun { outcomes, report })
    }
}

/// Solves one variant with its fault scope armed on the executing
/// thread.
///
/// The scope gives the deterministic fault-injection tier
/// ([`refgen_mna::faults`]) the variant's fleet index — with no plan
/// installed every query is an inert atomic load, so the `FailFast`
/// path is exactly the pre-containment solve. With `contain` set, the
/// whole solve runs under `catch_unwind`: a panicking variant
/// (scripted or genuine) is quarantined into
/// [`RefgenError::VariantPanicked`] instead of unwinding the fleet.
fn solve_one(
    solver: &dyn Solver,
    variant: usize,
    circuit: &Circuit,
    spec: &TransferSpec,
    observer: &mut dyn Observer,
    runtime: &SamplingRuntime,
    contain: bool,
) -> Result<Solution, RefgenError> {
    let run = |observer: &mut dyn Observer| {
        let _scope = faults::FaultScope::variant(variant);
        if faults::scripted_panic() {
            panic!("injected fault: scripted panic for variant {variant}");
        }
        solver.solve_with_runtime(circuit, spec, observer, runtime)
    };
    if contain {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(observer))).unwrap_or_else(
            |payload| {
                Err(RefgenError::VariantPanicked {
                    message: JobPanic::from_payload(payload).message,
                })
            },
        )
    } else {
        run(observer)
    }
}

/// Per-index population mean/variance over one polynomial of every
/// solution, zero-padded to the longest coefficient vector.
fn coefficient_stats(
    solutions: &[&Solution],
    poly: impl Fn(&Solution) -> &[refgen_numeric::ExtComplex],
) -> Vec<CoeffStats> {
    let len = solutions.iter().map(|s| poly(s).len()).max().unwrap_or(0);
    let n = solutions.len();
    (0..len)
        .map(|i| {
            let values = solutions.iter().map(|s| poly(s).get(i).map_or(0.0, |c| c.re().to_f64()));
            let mean = values.clone().sum::<f64>() / n as f64;
            let variance = values.map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            CoeffStats { mean, variance }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::CollectObserver;
    use crate::session::Session;
    use refgen_circuit::library::rc_ladder;
    use refgen_circuit::perturb::Perturbation;

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    fn small_fleet() -> VariantSet {
        VariantSet::new(Perturbation::all_relative(0.05), 6).seed(11)
    }

    #[test]
    fn batch_without_spec_is_typed_error() {
        let base = rc_ladder(3, 1e3, 1e-9);
        match Session::for_circuit(&base).variants(small_fleet()).solve_all() {
            Err(RefgenError::SpecMissing) => {}
            other => panic!("expected SpecMissing, got {:?}", other.map(|_| "ok")),
        }
    }

    #[test]
    fn batch_streams_variant_solved_and_accounts_hits() {
        let base = rc_ladder(4, 1e3, 1e-9);
        let mut obs = CollectObserver::new();
        let run = Session::for_circuit(&base)
            .spec(spec())
            .observer(&mut obs)
            .variants(small_fleet())
            .solve_all()
            .unwrap();
        assert_eq!(run.solutions().len(), 6);
        assert_eq!(run.report.variants_attempted, 6);
        assert!(run.report.failed_variants.is_empty());
        let solved: Vec<_> = obs
            .events
            .iter()
            .filter_map(|d| match d {
                Diagnostic::VariantSolved { variant, total_points, refactor_hits } => {
                    Some((*variant, *total_points, *refactor_hits))
                }
                _ => None,
            })
            .collect();
        assert_eq!(solved.len(), 6);
        for (i, (variant, points, hits)) in solved.into_iter().enumerate() {
            assert_eq!(variant, i);
            assert_eq!(points, run.report.variant_points[i]);
            assert_eq!(hits, run.report.variant_refactor_hits[i]);
            // The per-variant totals in the report equal the sum of the
            // variant's own SamplingBatched stream — the accounting the
            // satellite fix surfaces.
            let streamed: u64 = run.solutions()[i]
                .diagnostics()
                .filter_map(|d| match d {
                    Diagnostic::SamplingBatched { refactor_hits, .. } => Some(*refactor_hits),
                    _ => None,
                })
                .sum();
            assert_eq!(streamed, hits, "variant {i}");
        }
        assert_eq!(
            run.report.total_refactor_hits,
            run.report.variant_refactor_hits.iter().sum::<u64>()
        );
    }

    #[test]
    fn plan_reuse_keeps_pivot_searches_fleet_size_independent() {
        let base = rc_ladder(5, 1e3, 1e-9);
        let searches_of = |count: usize| {
            Session::for_circuit(&base)
                .spec(spec())
                .variants(VariantSet::new(Perturbation::all_relative(0.05), count).seed(3))
                .solve_all()
                .unwrap()
                .report
        };
        let small = searches_of(2);
        let large = searches_of(12);
        assert_eq!(
            small.pivot_searches, large.pivot_searches,
            "pivot searches must not scale with fleet size"
        );
        assert!(large.shared_plan_hits > small.shared_plan_hits);
        // Same topology → one compiled symbolic program, fleet-size
        // independent.
        assert_eq!(small.programs_compiled, large.programs_compiled);
    }

    #[test]
    fn explicit_circuits_and_stats_shape() {
        let base = rc_ladder(3, 1e3, 1e-9);
        let fleet = small_fleet().generate(&base).unwrap();
        let run =
            Session::for_circuit(&base).spec(spec()).variant_circuits(&fleet).solve_all().unwrap();
        assert_eq!(run.report.variants, 6);
        assert_eq!(run.report.denominator.len(), 4); // degree 3 → 4 coefficients
        assert_eq!(run.report.numerator.len(), 1); // ladder numerator is constant
        for stats in &run.report.denominator {
            assert!(stats.variance >= 0.0);
            assert!(stats.std_dev() >= 0.0);
        }
        // The perturbation actually moved the coefficients.
        assert!(run.report.denominator[1].variance > 0.0);
    }

    /// The satellite-6 accounting fix, pinned: fanning variants out in
    /// lane-partitioned batches must leave every per-variant total — the
    /// `VariantSolved` stream, `variant_points`, `variant_refactor_hits`,
    /// and the coefficient statistics — bit-identical to the sequential
    /// loop, at every lane width.
    #[test]
    fn fanned_fleet_accounting_matches_sequential_exactly() {
        use refgen_exec::ExecutorKind;
        let base = rc_ladder(5, 1e3, 1e-9);
        let fleet =
            VariantSet::new(Perturbation::all_relative(0.05), 9).seed(21).generate(&base).unwrap();
        let run_with = |threads: usize, lanes: usize| {
            let mut obs = CollectObserver::new();
            let run = Session::for_circuit(&base)
                .spec(spec())
                .config(
                    crate::config::RefgenConfig::builder()
                        .threads(threads)
                        .executor(ExecutorKind::Scoped)
                        .lane_width(lanes)
                        .build(),
                )
                .observer(&mut obs)
                .variant_circuits(&fleet)
                .solve_all()
                .unwrap();
            let solved: Vec<(usize, usize, u64)> = obs
                .events
                .iter()
                .filter_map(|d| match d {
                    Diagnostic::VariantSolved { variant, total_points, refactor_hits } => {
                        Some((*variant, *total_points, *refactor_hits))
                    }
                    _ => None,
                })
                .collect();
            (run, solved)
        };
        let (reference, ref_solved) = run_with(1, 1);
        for lanes in [1, 4, 8] {
            // threads = 4 engages the variant-major fan-out; the 9-variant
            // fleet splits into uneven lane partitions at widths 4 and 8.
            let (run, solved) = run_with(4, lanes);
            assert_eq!(solved, ref_solved, "lanes {lanes}: VariantSolved stream differs");
            assert_eq!(
                run.report.variant_points, reference.report.variant_points,
                "lanes {lanes}: per-variant point totals differ"
            );
            assert_eq!(
                run.report.variant_refactor_hits, reference.report.variant_refactor_hits,
                "lanes {lanes}: per-variant refactor totals differ"
            );
            assert_eq!(run.report.total_refactor_hits, reference.report.total_refactor_hits);
            assert_eq!(run.report.pivot_searches, reference.report.pivot_searches);
            assert_eq!(run.report.shared_plan_hits, reference.report.shared_plan_hits);
            assert_eq!(run.report.programs_compiled, reference.report.programs_compiled);
            // Coefficient statistics are f64 aggregates of bit-identical
            // solutions: Debug equality ⇔ bit equality.
            assert_eq!(
                format!("{:?}|{:?}", run.report.denominator, run.report.numerator),
                format!("{:?}|{:?}", reference.report.denominator, reference.report.numerator),
                "lanes {lanes}: coefficient statistics differ"
            );
        }
    }

    #[test]
    fn zero_variant_fleet_is_typed_error() {
        let base = rc_ladder(3, 1e3, 1e-9);
        // Explicit empty circuit list…
        let empty: Vec<Circuit> = Vec::new();
        match Session::for_circuit(&base).spec(spec()).variant_circuits(&empty).solve_all() {
            Err(RefgenError::EmptyFleet) => {}
            other => panic!("expected EmptyFleet, got {:?}", other.map(|_| "ok")),
        }
        // …and a generated set that produces zero variants.
        let none = VariantSet::new(Perturbation::all_relative(0.05), 0).seed(1);
        match Session::for_circuit(&base).spec(spec()).variants(none).solve_all() {
            Err(RefgenError::EmptyFleet) => {}
            other => panic!("expected EmptyFleet, got {:?}", other.map(|_| "ok")),
        }
    }

    #[test]
    fn contained_panic_becomes_typed_outcome_and_fleet_survives() {
        use crate::config::FaultPolicy;
        use refgen_mna::faults::{FaultKind, FaultPlan};
        let base = rc_ladder(4, 1e3, 1e-9);
        // Victim index 13 exceeds every other fleet size in this test
        // binary, so tests running concurrently while the plan is
        // installed never arm a matching scope.
        let fleet =
            VariantSet::new(Perturbation::all_relative(0.05), 14).seed(11).generate(&base).unwrap();
        let plan = FaultPlan::new().fault_variant(13, FaultKind::Panic);
        let _guard = refgen_mna::faults::install(plan);
        let run = Session::for_circuit(&base)
            .spec(spec())
            .config(
                crate::config::RefgenConfig::builder().fault_policy(FaultPolicy::Contain).build(),
            )
            .variant_circuits(&fleet)
            .solve_all()
            .unwrap();
        assert_eq!(run.report.variants, 13);
        assert_eq!(run.report.variants_attempted, 14);
        assert_eq!(run.report.failed_variants, vec![13]);
        match &run.outcomes[13] {
            VariantOutcome::Failed {
                error: RefgenError::VariantPanicked { message },
                point,
                rung,
            } => {
                assert!(message.contains("scripted panic for variant 13"), "{message}");
                assert_eq!((point.as_deref(), *rung), (None, 0));
            }
            other => panic!("expected quarantined panic, got {other:?}"),
        }
    }

    #[test]
    fn variant_generation_failures_are_typed() {
        // An absolute rule large enough to cross zero on some draw.
        let mut base = Circuit::new();
        base.add_vsource("VIN", "in", "0", 1.0).unwrap();
        base.add_resistor("R1", "in", "out", 1.0).unwrap();
        base.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        let rules =
            Perturbation::new().absolute(refgen_circuit::perturb::ElementClass::Resistors, 50.0);
        let result = Session::for_circuit(&base)
            .spec(spec())
            .variants(VariantSet::new(rules, 64).seed(5))
            .solve_all();
        assert!(
            matches!(result, Err(RefgenError::Mna(MnaError::Circuit(_)))),
            "zero-crossing absolute tolerance must surface as a typed error"
        );
    }
}
