//! Batch sessions: Monte-Carlo / sensitivity fleets over one topology.
//!
//! A [`BatchSession`] solves a whole fleet of same-topology circuit
//! variants — generated from a seeded [`VariantSet`] or supplied
//! explicitly — through **one** [`SamplingRuntime`]: the worker pool (if
//! [`ExecutorKind::Pool`](refgen_exec::ExecutorKind::Pool) is configured)
//! spawns once for the fleet, and the shared plan cache means one pivot
//! search per scale region per *topology*, not per variant. Progress is
//! streamed as [`Diagnostic::VariantSolved`] events, and the aggregate
//! [`BatchReport`] carries per-coefficient mean/variance plus the
//! per-variant cost accounting.
//!
//! With more than one worker thread (and the default solver), the fleet
//! runs **variant-major**: variants are chunked into lane-width batches
//! and fanned across the runtime's executor, each worker solving its
//! variants through a single-threaded
//! [`SamplingRuntime::variant_worker`] runtime that shares the fleet's
//! plan cache. Inside each variant, `config.lane_width` unit-circle
//! points replay the compiled kernel per instruction-stream traversal
//! (see `refgen_sparse::BatchScratch`'s lane layout). The two axes
//! compose but never interact with results.
//!
//! Determinism: variants are generated and solved in order from a fixed
//! seed, every sampling batch and every variant batch collects in index
//! order, per-variant diagnostics are replayed to the observer in
//! variant order, and both pivot-order replay and batched lane replay
//! are value-exact — so a batch run is **bit-identical** at any thread
//! count, under either executor kind, at any lane width
//! (`tests/fleet_oracle.rs` asserts it against closed-form statistics).
//!
//! # Example
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_circuit::perturb::{ElementClass, Perturbation, VariantSet};
//! use refgen_core::Session;
//! use refgen_mna::TransferSpec;
//!
//! # fn main() -> Result<(), refgen_core::RefgenError> {
//! let base = rc_ladder(4, 1e3, 1e-9);
//! let tolerances = Perturbation::new()
//!     .relative(ElementClass::Resistors, 0.05)
//!     .relative(ElementClass::Capacitors, 0.10);
//! let run = Session::for_circuit(&base)
//!     .spec(TransferSpec::voltage_gain("VIN", "out"))
//!     .variants(VariantSet::new(tolerances, 16).seed(7))
//!     .solve_all()?;
//! assert_eq!(run.solutions.len(), 16);
//! assert_eq!(run.report.variants, 16);
//! // Every variant recovered the full 4th-order denominator…
//! assert!(run.solutions.iter().all(|s| s.network.denominator.degree() == Some(4)));
//! // …and the per-coefficient spread is available directly.
//! assert!(run.report.denominator[1].variance > 0.0);
//! # Ok(())
//! # }
//! ```

use crate::adaptive::AdaptiveInterpolator;
use crate::config::RefgenConfig;
use crate::diagnostic::{Diagnostic, NullObserver, Observer};
use crate::error::RefgenError;
use crate::runtime::SamplingRuntime;
use crate::solver::{Solution, Solver};
use refgen_circuit::perturb::VariantSet;
use refgen_circuit::Circuit;
use refgen_mna::{MnaError, TransferSpec};

/// Where a batch session's fleet comes from.
pub(crate) enum VariantInput<'a> {
    /// Generate from a seeded tolerance recipe at solve time.
    Generated(VariantSet),
    /// Caller-supplied circuits, borrowed (the session never needs
    /// ownership). They should share the base circuit's topology for plan
    /// reuse to engage; differing topologies still solve correctly, each
    /// paying its own pivot searches (the plan cache keys on the sparsity
    /// pattern, never just the dimension).
    Explicit(&'a [Circuit]),
}

/// A configured fleet solve. Built by
/// [`Session::variants`](crate::Session::variants) /
/// [`Session::variant_circuits`](crate::Session::variant_circuits); see
/// the [module docs](self) for the example and guarantees.
pub struct BatchSession<'a> {
    pub(crate) circuit: &'a Circuit,
    pub(crate) spec: Option<TransferSpec>,
    pub(crate) config: RefgenConfig,
    pub(crate) solver: Option<Box<dyn Solver + 'a>>,
    pub(crate) observer: Option<&'a mut dyn Observer>,
    pub(crate) variants: VariantInput<'a>,
}

/// Mean/variance of one recovered coefficient across a fleet
/// (population statistics, computed on the real parts in `f64` — the
/// imaginary parts of recovered coefficients are round-off diagnostics).
///
/// Coefficients of extreme-range circuits (beyond `f64`'s ~±308 decades,
/// e.g. deep µA741 tails) flush to zero in these statistics; the
/// underlying [`Solution`]s keep full extended-range precision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoeffStats {
    /// Sample mean.
    pub mean: f64,
    /// Population variance (`Σ(x−mean)²/n`).
    pub variance: f64,
}

impl CoeffStats {
    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Aggregate outcome of a [`BatchSession::solve_all`] fleet.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Number of variants solved.
    pub variants: usize,
    /// Per-coefficient statistics of the denominator polynomials
    /// (ascending powers; fleets whose variants disagree on degree are
    /// padded with zeros to the longest).
    pub denominator: Vec<CoeffStats>,
    /// Per-coefficient statistics of the numerator polynomials.
    pub numerator: Vec<CoeffStats>,
    /// Interpolation points each variant's solve spent, in fleet order.
    pub variant_points: Vec<usize>,
    /// Pivot-order reuses (refactorization hits) per variant, in fleet
    /// order — the per-variant totals behind every
    /// [`Diagnostic::SamplingBatched`] stream, summing to
    /// [`BatchReport::total_refactor_hits`].
    pub variant_refactor_hits: Vec<u64>,
    /// Fleet-wide pivot-order reuses.
    pub total_refactor_hits: u64,
    /// Full Markowitz pivot searches the fleet performed (probe
    /// factorizations through the shared plan cache). Plan reuse drives
    /// this toward the number of distinct window-scale regions of **one**
    /// solve — independent of fleet size.
    pub pivot_searches: usize,
    /// Plan builds that reused a recorded pivot order instead of probing.
    pub shared_plan_hits: usize,
    /// Symbolic `FactorProgram`s compiled across the fleet. Same-topology
    /// fleets compile exactly one and replay it for every variant.
    pub programs_compiled: usize,
}

/// Everything a finished fleet produced: the per-variant [`Solution`]s,
/// in fleet order, plus the aggregate [`BatchReport`].
#[derive(Debug)]
pub struct BatchRun {
    /// One full solution per variant, in fleet order.
    pub solutions: Vec<Solution>,
    /// Aggregate statistics and cost accounting.
    pub report: BatchReport,
}

impl<'a> BatchSession<'a> {
    /// Solves every variant, in order, through one shared runtime.
    ///
    /// The session's solver (default: the adaptive interpolator built
    /// from the session config) runs once per variant via
    /// [`Solver::solve_with_runtime`]; after each variant a
    /// [`Diagnostic::VariantSolved`] is streamed to the session observer.
    ///
    /// # Errors
    ///
    /// [`RefgenError::SpecMissing`] without a spec; variant-generation
    /// failures as [`RefgenError::Mna`]; otherwise the first failing
    /// variant's error (fleet solves are all-or-nothing — a legitimately
    /// unsolvable variant is a modeling problem the caller should see,
    /// not a silently shortened fleet).
    pub fn solve_all(self) -> Result<BatchRun, RefgenError> {
        let spec = self.spec.ok_or(RefgenError::SpecMissing)?;
        let generated;
        let circuits: &[Circuit] = match self.variants {
            VariantInput::Generated(vs) => {
                generated = vs
                    .generate(self.circuit)
                    .map_err(|e| RefgenError::Mna(MnaError::Circuit(e)))?;
                &generated
            }
            VariantInput::Explicit(circuits) => circuits,
        };
        let custom_solver = self.solver.is_some();
        let mut null = NullObserver;
        let observer: &mut dyn Observer = match self.observer {
            Some(o) => o,
            None => &mut null,
        };

        // One runtime for the fleet: pool threads spawn here (once), and
        // the plan cache accumulates pivot orders across every variant.
        let runtime = SamplingRuntime::new(&self.config);
        let threads = refgen_exec::resolve_threads(self.config.threads);
        let solutions = if !custom_solver && circuits.len() > 1 && threads > 1 {
            // Variant-major fan-out: whole variants are the unit of
            // parallelism. Each worker solves its variants through a
            // single-threaded [`SamplingRuntime::variant_worker`] runtime
            // (plan cache shared with the fleet), so the per-variant solve
            // is the sequential solve bit for bit; diagnostics are
            // replayed to the session observer in variant order
            // afterwards. A custom solver (`Box<dyn Solver>` is not
            // `Sync`) or an effectively single-threaded configuration
            // keeps the plain sequential loop below.
            let mut inner_config = self.config;
            inner_config.threads = 1;
            inner_config.executor = refgen_exec::ExecutorKind::Scoped;

            // Variant 0 solves inline first: it warms the shared plan
            // cache so the fanned workers replay recorded pivot orders
            // instead of queueing on the probe lock.
            let first = AdaptiveInterpolator::new(inner_config).solve_with_runtime(
                &circuits[0],
                &spec,
                &mut NullObserver,
                &runtime.variant_worker(),
            );

            // Remaining variants in lane-width batches — one batch per
            // worker slot, collected in index order.
            let lane = self.config.lane_width.max(1);
            let chunks: Vec<&[Circuit]> = circuits[1..].chunks(lane).collect();
            let worker_runtimes: Vec<SamplingRuntime> =
                chunks.iter().map(|_| runtime.variant_worker()).collect();
            let fanned: Vec<Vec<Result<Solution, RefgenError>>> =
                runtime.executor().par_map_indexed(
                    &chunks,
                    || (),
                    |i, chunk, _| {
                        let solver = AdaptiveInterpolator::new(inner_config);
                        let mut sink = NullObserver;
                        chunk
                            .iter()
                            .map(|circuit| {
                                solver.solve_with_runtime(
                                    circuit,
                                    &spec,
                                    &mut sink,
                                    &worker_runtimes[i],
                                )
                            })
                            .collect()
                    },
                );

            // Deterministic collection: variant order, lowest-index error
            // wins. The recorded diagnostic trail of each solution is
            // replayed to the session observer so the observable stream
            // matches a sequential run event for event.
            let mut solutions = Vec::with_capacity(circuits.len());
            for (variant, result) in
                std::iter::once(first).chain(fanned.into_iter().flatten()).enumerate()
            {
                let solution = result?;
                for diagnostic in solution.diagnostics() {
                    observer.on_diagnostic(diagnostic);
                }
                observer.on_diagnostic(&Diagnostic::VariantSolved {
                    variant,
                    total_points: solution.total_points(),
                    refactor_hits: solution.refactor_hits(),
                });
                solutions.push(solution);
            }
            solutions
        } else {
            let solver = self.solver.unwrap_or_else(|| {
                Box::new(AdaptiveInterpolator::new(self.config)) as Box<dyn Solver>
            });
            let mut solutions = Vec::with_capacity(circuits.len());
            for (variant, circuit) in circuits.iter().enumerate() {
                let solution = solver.solve_with_runtime(circuit, &spec, observer, &runtime)?;
                observer.on_diagnostic(&Diagnostic::VariantSolved {
                    variant,
                    total_points: solution.total_points(),
                    refactor_hits: solution.refactor_hits(),
                });
                solutions.push(solution);
            }
            solutions
        };

        let report = BatchReport {
            variants: solutions.len(),
            denominator: coefficient_stats(&solutions, |s| s.network.denominator.coeffs()),
            numerator: coefficient_stats(&solutions, |s| s.network.numerator.coeffs()),
            variant_points: solutions.iter().map(|s| s.total_points()).collect(),
            variant_refactor_hits: solutions.iter().map(|s| s.refactor_hits()).collect(),
            total_refactor_hits: solutions.iter().map(|s| s.refactor_hits()).sum(),
            pivot_searches: runtime.pivot_searches(),
            shared_plan_hits: runtime.shared_plan_hits(),
            programs_compiled: runtime.programs_compiled(),
        };
        Ok(BatchRun { solutions, report })
    }
}

/// Per-index population mean/variance over one polynomial of every
/// solution, zero-padded to the longest coefficient vector.
fn coefficient_stats(
    solutions: &[Solution],
    poly: impl Fn(&Solution) -> &[refgen_numeric::ExtComplex],
) -> Vec<CoeffStats> {
    let len = solutions.iter().map(|s| poly(s).len()).max().unwrap_or(0);
    let n = solutions.len();
    (0..len)
        .map(|i| {
            let values = solutions.iter().map(|s| poly(s).get(i).map_or(0.0, |c| c.re().to_f64()));
            let mean = values.clone().sum::<f64>() / n as f64;
            let variance = values.map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            CoeffStats { mean, variance }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::CollectObserver;
    use crate::session::Session;
    use refgen_circuit::library::rc_ladder;
    use refgen_circuit::perturb::Perturbation;

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    fn small_fleet() -> VariantSet {
        VariantSet::new(Perturbation::all_relative(0.05), 6).seed(11)
    }

    #[test]
    fn batch_without_spec_is_typed_error() {
        let base = rc_ladder(3, 1e3, 1e-9);
        match Session::for_circuit(&base).variants(small_fleet()).solve_all() {
            Err(RefgenError::SpecMissing) => {}
            other => panic!("expected SpecMissing, got {:?}", other.map(|_| "ok")),
        }
    }

    #[test]
    fn batch_streams_variant_solved_and_accounts_hits() {
        let base = rc_ladder(4, 1e3, 1e-9);
        let mut obs = CollectObserver::new();
        let run = Session::for_circuit(&base)
            .spec(spec())
            .observer(&mut obs)
            .variants(small_fleet())
            .solve_all()
            .unwrap();
        assert_eq!(run.solutions.len(), 6);
        let solved: Vec<_> = obs
            .events
            .iter()
            .filter_map(|d| match d {
                Diagnostic::VariantSolved { variant, total_points, refactor_hits } => {
                    Some((*variant, *total_points, *refactor_hits))
                }
                _ => None,
            })
            .collect();
        assert_eq!(solved.len(), 6);
        for (i, (variant, points, hits)) in solved.into_iter().enumerate() {
            assert_eq!(variant, i);
            assert_eq!(points, run.report.variant_points[i]);
            assert_eq!(hits, run.report.variant_refactor_hits[i]);
            // The per-variant totals in the report equal the sum of the
            // variant's own SamplingBatched stream — the accounting the
            // satellite fix surfaces.
            let streamed: u64 = run.solutions[i]
                .diagnostics()
                .filter_map(|d| match d {
                    Diagnostic::SamplingBatched { refactor_hits, .. } => Some(*refactor_hits),
                    _ => None,
                })
                .sum();
            assert_eq!(streamed, hits, "variant {i}");
        }
        assert_eq!(
            run.report.total_refactor_hits,
            run.report.variant_refactor_hits.iter().sum::<u64>()
        );
    }

    #[test]
    fn plan_reuse_keeps_pivot_searches_fleet_size_independent() {
        let base = rc_ladder(5, 1e3, 1e-9);
        let searches_of = |count: usize| {
            Session::for_circuit(&base)
                .spec(spec())
                .variants(VariantSet::new(Perturbation::all_relative(0.05), count).seed(3))
                .solve_all()
                .unwrap()
                .report
        };
        let small = searches_of(2);
        let large = searches_of(12);
        assert_eq!(
            small.pivot_searches, large.pivot_searches,
            "pivot searches must not scale with fleet size"
        );
        assert!(large.shared_plan_hits > small.shared_plan_hits);
        // Same topology → one compiled symbolic program, fleet-size
        // independent.
        assert_eq!(small.programs_compiled, large.programs_compiled);
    }

    #[test]
    fn explicit_circuits_and_stats_shape() {
        let base = rc_ladder(3, 1e3, 1e-9);
        let fleet = small_fleet().generate(&base).unwrap();
        let run =
            Session::for_circuit(&base).spec(spec()).variant_circuits(&fleet).solve_all().unwrap();
        assert_eq!(run.report.variants, 6);
        assert_eq!(run.report.denominator.len(), 4); // degree 3 → 4 coefficients
        assert_eq!(run.report.numerator.len(), 1); // ladder numerator is constant
        for stats in &run.report.denominator {
            assert!(stats.variance >= 0.0);
            assert!(stats.std_dev() >= 0.0);
        }
        // The perturbation actually moved the coefficients.
        assert!(run.report.denominator[1].variance > 0.0);
    }

    /// The satellite-6 accounting fix, pinned: fanning variants out in
    /// lane-partitioned batches must leave every per-variant total — the
    /// `VariantSolved` stream, `variant_points`, `variant_refactor_hits`,
    /// and the coefficient statistics — bit-identical to the sequential
    /// loop, at every lane width.
    #[test]
    fn fanned_fleet_accounting_matches_sequential_exactly() {
        use refgen_exec::ExecutorKind;
        let base = rc_ladder(5, 1e3, 1e-9);
        let fleet =
            VariantSet::new(Perturbation::all_relative(0.05), 9).seed(21).generate(&base).unwrap();
        let run_with = |threads: usize, lanes: usize| {
            let mut obs = CollectObserver::new();
            let run = Session::for_circuit(&base)
                .spec(spec())
                .config(
                    crate::config::RefgenConfig::builder()
                        .threads(threads)
                        .executor(ExecutorKind::Scoped)
                        .lane_width(lanes)
                        .build(),
                )
                .observer(&mut obs)
                .variant_circuits(&fleet)
                .solve_all()
                .unwrap();
            let solved: Vec<(usize, usize, u64)> = obs
                .events
                .iter()
                .filter_map(|d| match d {
                    Diagnostic::VariantSolved { variant, total_points, refactor_hits } => {
                        Some((*variant, *total_points, *refactor_hits))
                    }
                    _ => None,
                })
                .collect();
            (run, solved)
        };
        let (reference, ref_solved) = run_with(1, 1);
        for lanes in [1, 4, 8] {
            // threads = 4 engages the variant-major fan-out; the 9-variant
            // fleet splits into uneven lane partitions at widths 4 and 8.
            let (run, solved) = run_with(4, lanes);
            assert_eq!(solved, ref_solved, "lanes {lanes}: VariantSolved stream differs");
            assert_eq!(
                run.report.variant_points, reference.report.variant_points,
                "lanes {lanes}: per-variant point totals differ"
            );
            assert_eq!(
                run.report.variant_refactor_hits, reference.report.variant_refactor_hits,
                "lanes {lanes}: per-variant refactor totals differ"
            );
            assert_eq!(run.report.total_refactor_hits, reference.report.total_refactor_hits);
            assert_eq!(run.report.pivot_searches, reference.report.pivot_searches);
            assert_eq!(run.report.shared_plan_hits, reference.report.shared_plan_hits);
            assert_eq!(run.report.programs_compiled, reference.report.programs_compiled);
            // Coefficient statistics are f64 aggregates of bit-identical
            // solutions: Debug equality ⇔ bit equality.
            assert_eq!(
                format!("{:?}|{:?}", run.report.denominator, run.report.numerator),
                format!("{:?}|{:?}", reference.report.denominator, reference.report.numerator),
                "lanes {lanes}: coefficient statistics differ"
            );
        }
    }

    #[test]
    fn variant_generation_failures_are_typed() {
        // An absolute rule large enough to cross zero on some draw.
        let mut base = Circuit::new();
        base.add_vsource("VIN", "in", "0", 1.0).unwrap();
        base.add_resistor("R1", "in", "out", 1.0).unwrap();
        base.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        let rules =
            Perturbation::new().absolute(refgen_circuit::perturb::ElementClass::Resistors, 50.0);
        let result = Session::for_circuit(&base)
            .spec(spec())
            .variants(VariantSet::new(rules, 64).seed(5))
            .solve_all();
        assert!(
            matches!(result, Err(RefgenError::Mna(MnaError::Circuit(_)))),
            "zero-crossing absolute tolerance must surface as a typed error"
        );
    }
}
