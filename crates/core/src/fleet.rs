//! Batch sessions: Monte-Carlo / sensitivity fleets over one topology.
//!
//! A [`BatchSession`] solves a whole fleet of same-topology circuit
//! variants — generated from a seeded [`VariantSet`] or supplied
//! explicitly — through **one** [`SamplingRuntime`]: the worker pool (if
//! [`ExecutorKind::Pool`](refgen_exec::ExecutorKind::Pool) is configured)
//! spawns once for the fleet, and the shared plan cache means one pivot
//! search per scale region per *topology*, not per variant. Progress is
//! streamed as [`Diagnostic::VariantSolved`] events, and the aggregate
//! [`BatchReport`] carries per-coefficient mean/variance plus the
//! per-variant cost accounting.
//!
//! Determinism: variants are generated and solved in order from a fixed
//! seed, every sampling batch collects in index order, and pivot-order
//! replay is value-exact — so a batch run is **bit-identical** at any
//! thread count and under either executor kind
//! (`tests/fleet_oracle.rs` asserts it against closed-form statistics).
//!
//! # Example
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_circuit::perturb::{ElementClass, Perturbation, VariantSet};
//! use refgen_core::Session;
//! use refgen_mna::TransferSpec;
//!
//! # fn main() -> Result<(), refgen_core::RefgenError> {
//! let base = rc_ladder(4, 1e3, 1e-9);
//! let tolerances = Perturbation::new()
//!     .relative(ElementClass::Resistors, 0.05)
//!     .relative(ElementClass::Capacitors, 0.10);
//! let run = Session::for_circuit(&base)
//!     .spec(TransferSpec::voltage_gain("VIN", "out"))
//!     .variants(VariantSet::new(tolerances, 16).seed(7))
//!     .solve_all()?;
//! assert_eq!(run.solutions.len(), 16);
//! assert_eq!(run.report.variants, 16);
//! // Every variant recovered the full 4th-order denominator…
//! assert!(run.solutions.iter().all(|s| s.network.denominator.degree() == Some(4)));
//! // …and the per-coefficient spread is available directly.
//! assert!(run.report.denominator[1].variance > 0.0);
//! # Ok(())
//! # }
//! ```

use crate::adaptive::AdaptiveInterpolator;
use crate::config::RefgenConfig;
use crate::diagnostic::{Diagnostic, NullObserver, Observer};
use crate::error::RefgenError;
use crate::runtime::SamplingRuntime;
use crate::solver::{Solution, Solver};
use refgen_circuit::perturb::VariantSet;
use refgen_circuit::Circuit;
use refgen_mna::{MnaError, TransferSpec};

/// Where a batch session's fleet comes from.
pub(crate) enum VariantInput<'a> {
    /// Generate from a seeded tolerance recipe at solve time.
    Generated(VariantSet),
    /// Caller-supplied circuits, borrowed (the session never needs
    /// ownership). They should share the base circuit's topology for plan
    /// reuse to engage; differing topologies still solve correctly, each
    /// paying its own pivot searches (the plan cache keys on the sparsity
    /// pattern, never just the dimension).
    Explicit(&'a [Circuit]),
}

/// A configured fleet solve. Built by
/// [`Session::variants`](crate::Session::variants) /
/// [`Session::variant_circuits`](crate::Session::variant_circuits); see
/// the [module docs](self) for the example and guarantees.
pub struct BatchSession<'a> {
    pub(crate) circuit: &'a Circuit,
    pub(crate) spec: Option<TransferSpec>,
    pub(crate) config: RefgenConfig,
    pub(crate) solver: Option<Box<dyn Solver + 'a>>,
    pub(crate) observer: Option<&'a mut dyn Observer>,
    pub(crate) variants: VariantInput<'a>,
}

/// Mean/variance of one recovered coefficient across a fleet
/// (population statistics, computed on the real parts in `f64` — the
/// imaginary parts of recovered coefficients are round-off diagnostics).
///
/// Coefficients of extreme-range circuits (beyond `f64`'s ~±308 decades,
/// e.g. deep µA741 tails) flush to zero in these statistics; the
/// underlying [`Solution`]s keep full extended-range precision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoeffStats {
    /// Sample mean.
    pub mean: f64,
    /// Population variance (`Σ(x−mean)²/n`).
    pub variance: f64,
}

impl CoeffStats {
    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Aggregate outcome of a [`BatchSession::solve_all`] fleet.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Number of variants solved.
    pub variants: usize,
    /// Per-coefficient statistics of the denominator polynomials
    /// (ascending powers; fleets whose variants disagree on degree are
    /// padded with zeros to the longest).
    pub denominator: Vec<CoeffStats>,
    /// Per-coefficient statistics of the numerator polynomials.
    pub numerator: Vec<CoeffStats>,
    /// Interpolation points each variant's solve spent, in fleet order.
    pub variant_points: Vec<usize>,
    /// Pivot-order reuses (refactorization hits) per variant, in fleet
    /// order — the per-variant totals behind every
    /// [`Diagnostic::SamplingBatched`] stream, summing to
    /// [`BatchReport::total_refactor_hits`].
    pub variant_refactor_hits: Vec<u64>,
    /// Fleet-wide pivot-order reuses.
    pub total_refactor_hits: u64,
    /// Full Markowitz pivot searches the fleet performed (probe
    /// factorizations through the shared plan cache). Plan reuse drives
    /// this toward the number of distinct window-scale regions of **one**
    /// solve — independent of fleet size.
    pub pivot_searches: usize,
    /// Plan builds that reused a recorded pivot order instead of probing.
    pub shared_plan_hits: usize,
    /// Symbolic `FactorProgram`s compiled across the fleet. Same-topology
    /// fleets compile exactly one and replay it for every variant.
    pub programs_compiled: usize,
}

/// Everything a finished fleet produced: the per-variant [`Solution`]s,
/// in fleet order, plus the aggregate [`BatchReport`].
#[derive(Debug)]
pub struct BatchRun {
    /// One full solution per variant, in fleet order.
    pub solutions: Vec<Solution>,
    /// Aggregate statistics and cost accounting.
    pub report: BatchReport,
}

impl<'a> BatchSession<'a> {
    /// Solves every variant, in order, through one shared runtime.
    ///
    /// The session's solver (default: the adaptive interpolator built
    /// from the session config) runs once per variant via
    /// [`Solver::solve_with_runtime`]; after each variant a
    /// [`Diagnostic::VariantSolved`] is streamed to the session observer.
    ///
    /// # Errors
    ///
    /// [`RefgenError::SpecMissing`] without a spec; variant-generation
    /// failures as [`RefgenError::Mna`]; otherwise the first failing
    /// variant's error (fleet solves are all-or-nothing — a legitimately
    /// unsolvable variant is a modeling problem the caller should see,
    /// not a silently shortened fleet).
    pub fn solve_all(self) -> Result<BatchRun, RefgenError> {
        let spec = self.spec.ok_or(RefgenError::SpecMissing)?;
        let generated;
        let circuits: &[Circuit] = match self.variants {
            VariantInput::Generated(vs) => {
                generated = vs
                    .generate(self.circuit)
                    .map_err(|e| RefgenError::Mna(MnaError::Circuit(e)))?;
                &generated
            }
            VariantInput::Explicit(circuits) => circuits,
        };
        let solver = self
            .solver
            .unwrap_or_else(|| Box::new(AdaptiveInterpolator::new(self.config)) as Box<dyn Solver>);
        let mut null = NullObserver;
        let observer: &mut dyn Observer = match self.observer {
            Some(o) => o,
            None => &mut null,
        };

        // One runtime for the fleet: pool threads spawn here (once), and
        // the plan cache accumulates pivot orders across every variant.
        let runtime = SamplingRuntime::new(&self.config);
        let mut solutions = Vec::with_capacity(circuits.len());
        for (variant, circuit) in circuits.iter().enumerate() {
            let solution = solver.solve_with_runtime(circuit, &spec, observer, &runtime)?;
            observer.on_diagnostic(&Diagnostic::VariantSolved {
                variant,
                total_points: solution.total_points(),
                refactor_hits: solution.refactor_hits(),
            });
            solutions.push(solution);
        }

        let report = BatchReport {
            variants: solutions.len(),
            denominator: coefficient_stats(&solutions, |s| s.network.denominator.coeffs()),
            numerator: coefficient_stats(&solutions, |s| s.network.numerator.coeffs()),
            variant_points: solutions.iter().map(|s| s.total_points()).collect(),
            variant_refactor_hits: solutions.iter().map(|s| s.refactor_hits()).collect(),
            total_refactor_hits: solutions.iter().map(|s| s.refactor_hits()).sum(),
            pivot_searches: runtime.pivot_searches(),
            shared_plan_hits: runtime.shared_plan_hits(),
            programs_compiled: runtime.programs_compiled(),
        };
        Ok(BatchRun { solutions, report })
    }
}

/// Per-index population mean/variance over one polynomial of every
/// solution, zero-padded to the longest coefficient vector.
fn coefficient_stats(
    solutions: &[Solution],
    poly: impl Fn(&Solution) -> &[refgen_numeric::ExtComplex],
) -> Vec<CoeffStats> {
    let len = solutions.iter().map(|s| poly(s).len()).max().unwrap_or(0);
    let n = solutions.len();
    (0..len)
        .map(|i| {
            let values = solutions.iter().map(|s| poly(s).get(i).map_or(0.0, |c| c.re().to_f64()));
            let mean = values.clone().sum::<f64>() / n as f64;
            let variance = values.map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            CoeffStats { mean, variance }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::CollectObserver;
    use crate::session::Session;
    use refgen_circuit::library::rc_ladder;
    use refgen_circuit::perturb::Perturbation;

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    fn small_fleet() -> VariantSet {
        VariantSet::new(Perturbation::all_relative(0.05), 6).seed(11)
    }

    #[test]
    fn batch_without_spec_is_typed_error() {
        let base = rc_ladder(3, 1e3, 1e-9);
        match Session::for_circuit(&base).variants(small_fleet()).solve_all() {
            Err(RefgenError::SpecMissing) => {}
            other => panic!("expected SpecMissing, got {:?}", other.map(|_| "ok")),
        }
    }

    #[test]
    fn batch_streams_variant_solved_and_accounts_hits() {
        let base = rc_ladder(4, 1e3, 1e-9);
        let mut obs = CollectObserver::new();
        let run = Session::for_circuit(&base)
            .spec(spec())
            .observer(&mut obs)
            .variants(small_fleet())
            .solve_all()
            .unwrap();
        assert_eq!(run.solutions.len(), 6);
        let solved: Vec<_> = obs
            .events
            .iter()
            .filter_map(|d| match d {
                Diagnostic::VariantSolved { variant, total_points, refactor_hits } => {
                    Some((*variant, *total_points, *refactor_hits))
                }
                _ => None,
            })
            .collect();
        assert_eq!(solved.len(), 6);
        for (i, (variant, points, hits)) in solved.into_iter().enumerate() {
            assert_eq!(variant, i);
            assert_eq!(points, run.report.variant_points[i]);
            assert_eq!(hits, run.report.variant_refactor_hits[i]);
            // The per-variant totals in the report equal the sum of the
            // variant's own SamplingBatched stream — the accounting the
            // satellite fix surfaces.
            let streamed: u64 = run.solutions[i]
                .diagnostics()
                .filter_map(|d| match d {
                    Diagnostic::SamplingBatched { refactor_hits, .. } => Some(*refactor_hits),
                    _ => None,
                })
                .sum();
            assert_eq!(streamed, hits, "variant {i}");
        }
        assert_eq!(
            run.report.total_refactor_hits,
            run.report.variant_refactor_hits.iter().sum::<u64>()
        );
    }

    #[test]
    fn plan_reuse_keeps_pivot_searches_fleet_size_independent() {
        let base = rc_ladder(5, 1e3, 1e-9);
        let searches_of = |count: usize| {
            Session::for_circuit(&base)
                .spec(spec())
                .variants(VariantSet::new(Perturbation::all_relative(0.05), count).seed(3))
                .solve_all()
                .unwrap()
                .report
        };
        let small = searches_of(2);
        let large = searches_of(12);
        assert_eq!(
            small.pivot_searches, large.pivot_searches,
            "pivot searches must not scale with fleet size"
        );
        assert!(large.shared_plan_hits > small.shared_plan_hits);
        // Same topology → one compiled symbolic program, fleet-size
        // independent.
        assert_eq!(small.programs_compiled, large.programs_compiled);
    }

    #[test]
    fn explicit_circuits_and_stats_shape() {
        let base = rc_ladder(3, 1e3, 1e-9);
        let fleet = small_fleet().generate(&base).unwrap();
        let run =
            Session::for_circuit(&base).spec(spec()).variant_circuits(&fleet).solve_all().unwrap();
        assert_eq!(run.report.variants, 6);
        assert_eq!(run.report.denominator.len(), 4); // degree 3 → 4 coefficients
        assert_eq!(run.report.numerator.len(), 1); // ladder numerator is constant
        for stats in &run.report.denominator {
            assert!(stats.variance >= 0.0);
            assert!(stats.std_dev() >= 0.0);
        }
        // The perturbation actually moved the coefficients.
        assert!(run.report.denominator[1].variance > 0.0);
    }

    #[test]
    fn variant_generation_failures_are_typed() {
        // An absolute rule large enough to cross zero on some draw.
        let mut base = Circuit::new();
        base.add_vsource("VIN", "in", "0", 1.0).unwrap();
        base.add_resistor("R1", "in", "out", 1.0).unwrap();
        base.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        let rules =
            Perturbation::new().absolute(refgen_circuit::perturb::ElementClass::Resistors, 50.0);
        let result = Session::for_circuit(&base)
            .spec(spec())
            .variants(VariantSet::new(rules, 64).seed(5))
            .solve_all();
        assert!(
            matches!(result, Err(RefgenError::Mna(MnaError::Circuit(_)))),
            "zero-crossing absolute tolerance must surface as a typed error"
        );
    }
}
