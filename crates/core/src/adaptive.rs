//! The adaptive-scaling driver (paper §3.2–§3.3).
//!
//! Per polynomial (numerator, denominator):
//!
//! 1. First interpolation at the heuristic scale factors
//!    (`f = 1/mean(C)`, `g = 1/mean(G)`) — aims the widest valid window.
//! 2. **Ascending phase**: while coefficients above the known range remain,
//!    compute new scale factors from the last window (eqs. (13)–(14)),
//!    interpolate again — with the problem-size reduction of eq. (17) when
//!    enabled — and merge the new valid window. Window gaps are repaired by
//!    eq. (16) bisection. If escalating re-tilts find nothing new, the
//!    remaining high-order coefficients are *declared zero* (this is how
//!    the true polynomial order emerges, cf. §3.3 "neglecting high order
//!    coefficients").
//! 3. **Descending phase** (only if the first window missed `p₀`):
//!    symmetric, using eq. (15).
//!
//! Every coefficient is denormalized as `p_i = p'_i/(f^i·g^{M−i})` in
//! extended-range arithmetic and cross-checked between overlapping windows.

use crate::config::RefgenConfig;
use crate::diagnostic::{Diagnostic, NullObserver, Observer, Severity};
use crate::error::RefgenError;
use crate::runtime::SamplingRuntime;
use crate::scaling::{
    gap_repair_scale, initial_scale, initial_scale_frequency_only, step_scale_with_policy,
    Direction, ScalePolicy,
};
use crate::solver::{Solution, Solver};
use crate::window::{interpolate_window, Reduction, Sampler, Window};
use refgen_circuit::{Circuit, ElementKind};
use refgen_mna::{MnaSystem, Scale, TransferSpec};
use refgen_numeric::{Complex, ExtComplex, ExtFloat, ExtPoly};
use std::collections::{BTreeMap, BTreeSet};

pub use crate::window::PolyKind;

/// Summary of one interpolation performed during a run.
#[derive(Clone, Copy, Debug)]
pub struct WindowSummary {
    /// Scale factors used.
    pub scale: Scale,
    /// Interpolation points spent (`K`).
    pub points: usize,
    /// Valid region captured (global coefficient indices, inclusive).
    pub region: Option<(usize, usize)>,
    /// Whether eq. (17) reduction was in effect.
    pub reduced: bool,
}

/// Per-polynomial run report.
#[derive(Clone, Debug)]
pub struct PolyReport {
    /// Which polynomial.
    pub kind: PolyKind,
    /// Every interpolation, in execution order.
    pub windows: Vec<WindowSummary>,
    /// Coefficient indices declared zero by stall detection.
    pub declared_zero: Vec<usize>,
    /// Typed events recorded during recovery, in execution order — the
    /// same stream an [`Observer`] receives live.
    pub diagnostics: Vec<Diagnostic>,
    /// The a-priori order bound (`#` reactive elements).
    pub order_bound: usize,
    /// Degree of the recovered polynomial.
    pub effective_degree: Option<usize>,
    /// Total interpolation points across all windows (the cost the
    /// reduction of eq. (17) shrinks — §3.3's CPU-time story).
    pub total_points: usize,
    /// Total sampling points (across all windows) that reused their
    /// window plan's recorded pivot order — numeric refactorization
    /// instead of a Markowitz pivot search. Deterministic: the same solve
    /// reports the same count at any thread count.
    pub refactor_hits: u64,
}

impl PolyReport {
    /// Diagnostics of [`Severity::Warning`] — the events worth a second
    /// look (declared zeros, cross-check mismatches, all-zero samples).
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Warning)
    }

    /// Records `diagnostic` and streams it to `observer` — the single
    /// write path for both trails, which is what keeps the recorded
    /// diagnostics and the live stream identical.
    pub(crate) fn emit(&mut self, observer: &mut dyn Observer, diagnostic: Diagnostic) {
        observer.on_diagnostic(&diagnostic);
        self.diagnostics.push(diagnostic);
    }

    /// Accounts one computed window (summary + point/refactor totals) and
    /// emits its [`Diagnostic::WindowOpened`] + `SamplingBatched` pair —
    /// the single write path every solver uses, which is what keeps their
    /// diagnostic streams structurally identical.
    pub(crate) fn record_window(&mut self, observer: &mut dyn Observer, w: &Window) {
        self.windows.push(WindowSummary {
            scale: w.scale,
            points: w.points,
            region: w.region,
            reduced: w.reduced,
        });
        self.total_points += w.points;
        self.refactor_hits += w.refactor_hits;
        let kind = self.kind;
        self.emit(
            observer,
            Diagnostic::WindowOpened {
                kind,
                scale: w.scale,
                points: w.points,
                region: w.region,
                reduced: w.reduced,
            },
        );
        self.emit(
            observer,
            Diagnostic::SamplingBatched {
                points: w.points,
                threads: w.threads,
                refactor_hits: w.refactor_hits,
                compiled_hits: w.compiled_hits,
                mirrored: w.mirrored,
            },
        );
        // Recovery is exceptional by construction, so the event is only
        // emitted when the ladder actually fired — fault-free streams are
        // byte-identical to pre-ladder builds.
        if w.recovered_fresh + w.recovered_reordered > 0 {
            self.emit(
                observer,
                Diagnostic::SolveRecovered {
                    fresh: w.recovered_fresh,
                    reordered: w.recovered_reordered,
                },
            );
        }
        // One ordering event per *decision*, not per window: windows at
        // nearby scales share a cached plan (and therefore a choice), so
        // only a change from the previously reported selection is news.
        if let Some((dim, choice)) = w.ordering {
            let event = Diagnostic::OrderingSelected {
                dim,
                markowitz_fill: choice.markowitz_fill,
                amd_fill: choice.amd_fill,
                amd: choice.selected == refgen_mna::SelectedOrdering::Amd,
            };
            let last = self
                .diagnostics
                .iter()
                .rev()
                .find(|d| matches!(d, Diagnostic::OrderingSelected { .. }));
            if last != Some(&event) {
                self.emit(observer, event);
            }
        }
    }
}

/// The admittance degree of the polynomial being recovered — shared by
/// every solver's denormalization. The numerator cofactor of a
/// current-source-driven transfer function has one admittance factor fewer
/// (a node row *and* a node column are struck, removing one admittance;
/// see `DESIGN.md` §4).
pub(crate) fn poly_admittance_degree(
    sys: &MnaSystem,
    spec: &TransferSpec,
    kind: PolyKind,
) -> Result<i64, RefgenError> {
    if sys.has_unscalable_elements() {
        // Frequency-only mode: g ≡ 1, so the admittance degree never
        // enters a denormalization factor. Return 0 for definiteness.
        return Ok(0);
    }
    let m = sys.admittance_degree();
    if kind == PolyKind::Denominator {
        return Ok(m);
    }
    let (source, _) = sys.resolve_source(&spec.input)?;
    let is_current = matches!(
        sys.circuit().element(&source).map(|e| &e.kind),
        Some(ElementKind::ISource { .. })
    );
    Ok(if is_current { m - 1 } else { m })
}

/// Full run report for a network function.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Numerator recovery report.
    pub numerator: PolyReport,
    /// Denominator recovery report.
    pub denominator: PolyReport,
    /// The admittance degree `M` used for denormalization.
    pub admittance_degree: i64,
}

/// A recovered network function `H(s) = N(s)/D(s)` with extended-range
/// coefficients — the *numerical reference* SBG/SDG error control consumes.
#[derive(Clone, Debug)]
pub struct NetworkFunction {
    /// Numerator polynomial `N(s)`.
    pub numerator: ExtPoly,
    /// Denominator polynomial `D(s)`.
    pub denominator: ExtPoly,
    /// How the recovery went.
    pub report: RunReport,
}

impl NetworkFunction {
    /// Evaluates `H(s)` at a complex frequency.
    pub fn eval(&self, s: Complex) -> Complex {
        let n = self.numerator.eval(s);
        let d = self.denominator.eval(s);
        (n / d).to_complex()
    }

    /// Evaluates at `s = j·2πf` for `f` in hertz.
    pub fn response_at_hz(&self, freq_hz: f64) -> Complex {
        self.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * freq_hz))
    }

    /// Bode data `(freq, magnitude dB, phase deg)` over a frequency grid.
    pub fn bode(&self, freqs_hz: &[f64]) -> Vec<(f64, f64, f64)> {
        freqs_hz
            .iter()
            .map(|&f| {
                let h = self.response_at_hz(f);
                (f, 20.0 * h.abs().log10(), h.arg().to_degrees())
            })
            .collect()
    }

    /// DC gain `H(0)`.
    pub fn dc_gain(&self) -> Complex {
        self.eval(Complex::ZERO)
    }

    /// Poles (denominator roots), extended range.
    pub fn poles(&self) -> Vec<ExtComplex> {
        self.denominator.roots(1e-12, 500)
    }

    /// Zeros (numerator roots), extended range.
    pub fn zeros(&self) -> Vec<ExtComplex> {
        self.numerator.roots(1e-12, 500)
    }
}

#[derive(Clone, Copy, Debug)]
struct Accepted {
    value: ExtComplex,
    quality: f64,
}

/// The paper's algorithm, configured.
#[derive(Clone, Debug)]
pub struct AdaptiveInterpolator {
    config: RefgenConfig,
}

impl Default for AdaptiveInterpolator {
    fn default() -> Self {
        AdaptiveInterpolator::new(RefgenConfig::default())
    }
}

impl AdaptiveInterpolator {
    /// Creates an interpolator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`RefgenConfig::assert_valid`]).
    pub fn new(config: RefgenConfig) -> Self {
        config.assert_valid();
        AdaptiveInterpolator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RefgenConfig {
        &self.config
    }

    /// Recovers the full network function of `spec` on `circuit`.
    ///
    /// Circuits containing inductors or CCVS elements are handled in
    /// frequency-only scaling mode ([`ScalePolicy::FrequencyOnly`]); all
    /// other circuits use the paper's simultaneous scaling.
    ///
    /// # Errors
    ///
    /// * [`RefgenError::NoReactiveElements`] for purely resistive circuits,
    /// * [`RefgenError::DidNotConverge`]/[`RefgenError::Gap`] when the
    ///   adaptive loop cannot tile the coefficient range,
    /// * [`RefgenError::Mna`] for invalid circuits or specs.
    pub fn network_function(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
    ) -> Result<NetworkFunction, RefgenError> {
        let sys = MnaSystem::new(circuit)?;
        self.network_function_with(&sys, spec)
    }

    /// As [`AdaptiveInterpolator::network_function`] but reusing a compiled
    /// system.
    ///
    /// # Errors
    ///
    /// See [`AdaptiveInterpolator::network_function`].
    pub fn network_function_with(
        &self,
        sys: &MnaSystem,
        spec: &TransferSpec,
    ) -> Result<NetworkFunction, RefgenError> {
        self.network_function_with_observed(sys, spec, &mut NullObserver)
    }

    /// As [`AdaptiveInterpolator::network_function_with`], streaming
    /// [`Diagnostic`] events to `observer` as the recovery progresses.
    ///
    /// # Errors
    ///
    /// See [`AdaptiveInterpolator::network_function`].
    pub fn network_function_with_observed(
        &self,
        sys: &MnaSystem,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
    ) -> Result<NetworkFunction, RefgenError> {
        // One runtime per solve: the pool (if configured) spawns once and
        // the plan cache is shared across every window of both
        // polynomials. Batch sessions call network_function_runtime
        // directly with a fleet-wide runtime instead.
        let runtime = SamplingRuntime::new(&self.config);
        self.network_function_runtime(sys, spec, observer, &runtime)
    }

    /// As [`AdaptiveInterpolator::network_function_with_observed`], using
    /// a caller-supplied [`SamplingRuntime`] (shared executor + plan
    /// cache) instead of a per-solve one — the batch-session entry point.
    ///
    /// # Errors
    ///
    /// See [`AdaptiveInterpolator::network_function`].
    pub fn network_function_runtime(
        &self,
        sys: &MnaSystem,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<NetworkFunction, RefgenError> {
        self.preflight(sys, spec)?;
        let (denominator, den_report) =
            self.recover(sys, spec, PolyKind::Denominator, observer, runtime)?;
        let (numerator, num_report) =
            self.recover(sys, spec, PolyKind::Numerator, observer, runtime)?;
        Ok(NetworkFunction {
            numerator,
            denominator,
            report: RunReport {
                numerator: num_report,
                denominator: den_report,
                admittance_degree: sys.admittance_degree(),
            },
        })
    }

    /// Recovers a single polynomial of the network function.
    ///
    /// # Errors
    ///
    /// See [`AdaptiveInterpolator::network_function`].
    pub fn polynomial(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        kind: PolyKind,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        Solver::solve_polynomial(self, circuit, spec, kind, &mut NullObserver)
    }

    fn preflight(&self, sys: &MnaSystem, spec: &TransferSpec) -> Result<(), RefgenError> {
        if sys.circuit().reactive_count() == 0 {
            return Err(RefgenError::NoReactiveElements);
        }
        // Resolve the source now so spec errors surface before any sampling.
        sys.resolve_source(&spec.input).map_err(RefgenError::from)?;
        Ok(())
    }

    fn recover(
        &self,
        sys: &MnaSystem,
        spec: &TransferSpec,
        kind: PolyKind,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        let n_max = sys.circuit().reactive_count();
        let m_adm = poly_admittance_degree(sys, spec, kind)?;
        let sampler = Sampler { sys, spec, kind };
        let mut report = PolyReport {
            kind,
            windows: Vec::new(),
            declared_zero: Vec::new(),
            diagnostics: Vec::new(),
            order_bound: n_max,
            effective_degree: None,
            total_points: 0,
            refactor_hits: 0,
        };
        let mut accepted: BTreeMap<usize, Accepted> = BTreeMap::new();
        let mut declared: BTreeSet<usize> = BTreeSet::new();

        // Inductors/CCVS break admittance homogeneity: fall back to exact
        // frequency-only scaling (see `ScalePolicy`).
        let policy = if sys.has_unscalable_elements() {
            ScalePolicy::FrequencyOnly
        } else {
            ScalePolicy::Simultaneous
        };
        let scale0 = match policy {
            ScalePolicy::Simultaneous => initial_scale(sys.circuit()),
            ScalePolicy::FrequencyOnly => initial_scale_frequency_only(sys.circuit()),
        };
        let w0 = self.run_checked(
            &sampler,
            scale0,
            n_max,
            m_adm,
            None,
            policy,
            &mut report,
            observer,
            runtime,
        )?;
        if w0.all_zero() {
            report.emit(observer, Diagnostic::AllSamplesZero { kind });
            report.effective_degree = None;
            return Ok((ExtPoly::zero(), report));
        }
        self.accept_window(&w0, m_adm, &mut accepted, &mut report, observer);

        // --- Descending phase first (only if the first window missed p₀) —
        // completing the head makes the ascending phase's eq. (17)
        // reduction legal from the start.
        if !accepted.contains_key(&0) {
            let mut last_desc = w0.clone();
            loop {
                let bottom = *accepted.keys().min().expect("non-empty");
                if bottom == 0 || report.windows.len() >= self.config.max_interpolations {
                    break;
                }
                let mut stepped = false;
                for attempt in 0..=self.config.stall_retries {
                    if report.windows.len() >= self.config.max_interpolations {
                        break;
                    }
                    let extra = attempt as f64 * self.config.noise_decades;
                    let scale = step_scale_with_policy(
                        &last_desc,
                        Direction::Descending,
                        extra,
                        &self.config,
                        policy,
                    );
                    let reduction = self.descent_reduction(&accepted, &declared, n_max);
                    let w = self.run_checked(
                        &sampler,
                        scale,
                        n_max,
                        m_adm,
                        reduction.as_ref(),
                        policy,
                        &mut report,
                        observer,
                        runtime,
                    )?;
                    let Some((lo, hi)) = w.region else { continue };
                    if lo >= bottom {
                        continue;
                    }
                    if hi + 1 < bottom {
                        self.repair_gap(
                            &sampler,
                            w.scale,
                            last_desc.scale,
                            (hi + 1, bottom - 1),
                            n_max,
                            m_adm,
                            policy,
                            &mut accepted,
                            &mut report,
                            observer,
                            runtime,
                        )?;
                    }
                    self.accept_window(&w, m_adm, &mut accepted, &mut report, observer);
                    last_desc = w;
                    stepped = true;
                    break;
                }
                if !stepped {
                    let bottom = *accepted.keys().min().expect("non-empty");
                    report.emit(
                        observer,
                        Diagnostic::CoefficientsDeclaredZero { kind, lo: 0, hi: bottom - 1 },
                    );
                    for i in 0..bottom {
                        declared.insert(i);
                    }
                    break;
                }
            }
        }

        // --- Ascending phase -------------------------------------------
        let mut last = w0;
        loop {
            let top = *accepted.keys().max().expect("non-empty after first window");
            if top >= n_max || report.windows.len() >= self.config.max_interpolations {
                break;
            }
            let mut stepped = false;
            for attempt in 0..=self.config.stall_retries {
                if report.windows.len() >= self.config.max_interpolations {
                    break;
                }
                let extra = attempt as f64 * self.config.noise_decades;
                let scale = step_scale_with_policy(
                    &last,
                    Direction::Ascending,
                    extra,
                    &self.config,
                    policy,
                );
                let reduction = self.ascent_reduction(&accepted, &declared, n_max);
                let w = self.run_checked(
                    &sampler,
                    scale,
                    n_max,
                    m_adm,
                    reduction.as_ref(),
                    policy,
                    &mut report,
                    observer,
                    runtime,
                )?;
                let Some((lo, hi)) = w.region else { continue };
                if hi <= top {
                    continue;
                }
                if lo > top + 1 {
                    self.repair_gap(
                        &sampler,
                        last.scale,
                        w.scale,
                        (top + 1, lo - 1),
                        n_max,
                        m_adm,
                        policy,
                        &mut accepted,
                        &mut report,
                        observer,
                        runtime,
                    )?;
                }
                self.accept_window(&w, m_adm, &mut accepted, &mut report, observer);
                last = w;
                stepped = true;
                break;
            }
            if !stepped {
                // Stall: the remaining high-order coefficients are zero
                // (true-order detection, §3.3).
                let top = *accepted.keys().max().expect("non-empty");
                report.emit(
                    observer,
                    Diagnostic::CoefficientsDeclaredZero { kind, lo: top + 1, hi: n_max },
                );
                for i in (top + 1)..=n_max {
                    declared.insert(i);
                }
                break;
            }
        }

        // --- Coverage check ----------------------------------------------
        let missing: Vec<usize> =
            (0..=n_max).filter(|i| !accepted.contains_key(i) && !declared.contains(i)).collect();
        if !missing.is_empty() {
            return Err(RefgenError::DidNotConverge { missing });
        }

        report.declared_zero = declared.iter().copied().collect();
        let coeffs: Vec<ExtComplex> = (0..=n_max)
            .map(|i| accepted.get(&i).map(|a| a.value).unwrap_or(ExtComplex::ZERO))
            .collect();
        let poly = ExtPoly::new(coeffs);
        report.effective_degree = poly.degree();
        Ok((poly, report))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_window(
        &self,
        sampler: &Sampler<'_>,
        scale: Scale,
        n_max: usize,
        m_adm: i64,
        reduction: Option<&Reduction>,
        report: &mut PolyReport,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<Window, RefgenError> {
        let w = interpolate_window(sampler, scale, n_max, m_adm, reduction, &self.config, runtime)?;
        report.record_window(observer, &w);
        Ok(w)
    }

    /// Runs a window and, when `config.verify` is set, re-interpolates at a
    /// slightly perturbed scale and trims the valid region to coefficients
    /// whose denormalized values agree — the paper's "equal in both
    /// interpolations" acceptance criterion. This is what rejects coherent
    /// round-off artifacts that pass the magnitude and reality tests.
    #[allow(clippy::too_many_arguments)]
    fn run_checked(
        &self,
        sampler: &Sampler<'_>,
        scale: Scale,
        n_max: usize,
        m_adm: i64,
        reduction: Option<&Reduction>,
        policy: ScalePolicy,
        report: &mut PolyReport,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<Window, RefgenError> {
        let mut w =
            self.run_window(sampler, scale, n_max, m_adm, reduction, report, observer, runtime)?;
        let Some((lo, hi)) = w.region else { return Ok(w) };
        if !self.config.verify {
            return Ok(w);
        }
        let delta = 10f64.powf(0.2);
        let scale2 = match policy {
            ScalePolicy::Simultaneous => Scale::new(scale.f * delta, scale.g / delta),
            // g must stay 1 in frequency-only mode (g-denormalization is
            // not valid for these circuits).
            ScalePolicy::FrequencyOnly => Scale::new(scale.f * delta * delta, 1.0),
        };
        let w2 =
            self.run_window(sampler, scale2, n_max, m_adm, reduction, report, observer, runtime)?;
        let tol = 10f64.powi(-(self.config.sig_digits as i32) + 2);
        let denorm = |win: &Window, i: usize| -> Option<ExtComplex> {
            let f = ExtFloat::from_f64(win.scale.f);
            let g = ExtFloat::from_f64(win.scale.g);
            let factor = f.powi(i as i64) * g.powi(m_adm - i as i64);
            win.normalized_at(i).map(|c| c.scale_ext(ExtFloat::ONE / factor))
        };
        let agrees = |i: usize| -> bool {
            match (denorm(&w, i), denorm(&w2, i)) {
                (Some(a), Some(b)) if !a.is_zero() && !b.is_zero() => {
                    let rel = ((a - b).norm() / a.norm().max_abs(b.norm())).to_f64();
                    rel <= tol
                }
                (Some(a), Some(b)) => a.is_zero() && b.is_zero(),
                _ => false,
            }
        };
        if !agrees(w.max_idx) {
            w.region = None;
            return Ok(w);
        }
        let mut new_lo = w.max_idx;
        while new_lo > lo && agrees(new_lo - 1) {
            new_lo -= 1;
        }
        let mut new_hi = w.max_idx;
        while new_hi < hi && agrees(new_hi + 1) {
            new_hi += 1;
        }
        w.region = Some((new_lo, new_hi));
        Ok(w)
    }

    /// Denormalizes and merges a window's valid region into the accepted
    /// set, preferring higher-quality (more significant digits) values and
    /// recording consistency warnings for disagreeing overlaps.
    fn accept_window(
        &self,
        w: &Window,
        m_adm: i64,
        accepted: &mut BTreeMap<usize, Accepted>,
        report: &mut PolyReport,
        observer: &mut dyn Observer,
    ) {
        let Some((lo, hi)) = w.region else { return };
        let f_ext = ExtFloat::from_f64(w.scale.f);
        let g_ext = ExtFloat::from_f64(w.scale.g);
        for i in lo..=hi {
            let norm = w.normalized_at(i).expect("region within window");
            let factor = f_ext.powi(i as i64) * g_ext.powi(m_adm - i as i64);
            let value = norm.scale_ext(ExtFloat::ONE / factor);
            let quality = w.quality(i);
            match accepted.get(&i) {
                Some(old) => {
                    let rel = ((old.value - value).norm() / old.value.norm().max_abs(value.norm()))
                        .to_f64();
                    let tol = 10f64.powi(-(self.config.sig_digits as i32) + 3);
                    if rel > tol {
                        let kind = report.kind;
                        report.emit(
                            observer,
                            Diagnostic::CrossCheckMismatch { kind, index: i, rel_err: rel },
                        );
                    }
                    if quality > old.quality {
                        accepted.insert(i, Accepted { value, quality });
                    }
                }
                None => {
                    accepted.insert(i, Accepted { value, quality });
                }
            }
        }
    }

    /// Eq. (17) reduction for the ascending phase: legal when accepted ∪
    /// declared covers `0..=top` contiguously (declared zeros subtract
    /// nothing and are simply omitted).
    fn ascent_reduction(
        &self,
        accepted: &BTreeMap<usize, Accepted>,
        declared: &BTreeSet<usize>,
        n_max: usize,
    ) -> Option<Reduction> {
        if !self.config.reduce {
            return None;
        }
        let top = *accepted.keys().max()?;
        if top + 1 > n_max {
            return None;
        }
        for i in 0..=top {
            if !accepted.contains_key(&i) && !declared.contains(&i) {
                return None;
            }
        }
        Some(Reduction {
            k: top + 1,
            l: n_max,
            known: accepted.iter().map(|(&i, a)| (i, a.value)).collect(),
        })
    }

    /// Eq. (17) reduction for the descending phase: legal when accepted ∪
    /// declared covers `bottom..=n_max` contiguously.
    fn descent_reduction(
        &self,
        accepted: &BTreeMap<usize, Accepted>,
        declared: &BTreeSet<usize>,
        n_max: usize,
    ) -> Option<Reduction> {
        if !self.config.reduce {
            return None;
        }
        let bottom = *accepted.keys().min()?;
        if bottom == 0 {
            return None;
        }
        for i in bottom..=n_max {
            if !accepted.contains_key(&i) && !declared.contains(&i) {
                return None;
            }
        }
        Some(Reduction {
            k: 0,
            l: bottom - 1,
            // Declared zeros subtract nothing; omit them.
            known: accepted
                .iter()
                .filter(|(&i, _)| i >= bottom)
                .map(|(&i, a)| (i, a.value))
                .collect(),
        })
    }

    /// Repairs a window gap by eq. (16) bisection between the bracketing
    /// scale pairs.
    #[allow(clippy::too_many_arguments)]
    fn repair_gap(
        &self,
        sampler: &Sampler<'_>,
        scale_lo_side: Scale,
        scale_hi_side: Scale,
        gap: (usize, usize),
        n_max: usize,
        m_adm: i64,
        policy: ScalePolicy,
        accepted: &mut BTreeMap<usize, Accepted>,
        report: &mut PolyReport,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<(), RefgenError> {
        let kind = report.kind;
        let mut queue = vec![(scale_lo_side, scale_hi_side, 0u32)];
        while let Some((a, b, depth)) = queue.pop() {
            let missing: Vec<usize> =
                (gap.0..=gap.1).filter(|i| !accepted.contains_key(i)).collect();
            if missing.is_empty() {
                report.emit(observer, Diagnostic::GapRepaired { kind, lo: gap.0, hi: gap.1 });
                return Ok(());
            }
            if depth >= self.config.gap_retries
                || report.windows.len() >= self.config.max_interpolations
            {
                continue;
            }
            let mid = gap_repair_scale(a, b);
            let w = self
                .run_checked(sampler, mid, n_max, m_adm, None, policy, report, observer, runtime)?;
            self.accept_window(&w, m_adm, accepted, report, observer);
            queue.push((a, mid, depth + 1));
            queue.push((mid, b, depth + 1));
        }
        let still: Vec<usize> = (gap.0..=gap.1).filter(|i| !accepted.contains_key(i)).collect();
        if still.is_empty() {
            report.emit(observer, Diagnostic::GapRepaired { kind, lo: gap.0, hi: gap.1 });
            Ok(())
        } else {
            Err(RefgenError::Gap { lo: still[0], hi: *still.last().expect("non-empty") })
        }
    }
}

impl Solver for AdaptiveInterpolator {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn solve_observed(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
    ) -> Result<Solution, RefgenError> {
        let sys = MnaSystem::new(circuit)?;
        let network = self.network_function_with_observed(&sys, spec, observer)?;
        Ok(Solution { network, method: self.name() })
    }

    /// The fleet path: reuses the caller's executor and plan cache, so a
    /// batch of same-topology variants spawns threads once and pays one
    /// pivot search per scale region across the whole fleet.
    fn solve_with_runtime(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<Solution, RefgenError> {
        let sys = MnaSystem::new(circuit)?;
        let network = self.network_function_runtime(&sys, spec, observer, runtime)?;
        Ok(Solution { network, method: self.name() })
    }

    /// Samples only the requested polynomial — half the work of a full
    /// solve, and robust to circuits where the other polynomial cannot be
    /// sampled (e.g. a singular system).
    fn solve_polynomial(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        kind: PolyKind,
        observer: &mut dyn Observer,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        let sys = MnaSystem::new(circuit)?;
        self.preflight(&sys, spec)?;
        let runtime = SamplingRuntime::new(&self.config);
        self.recover(&sys, spec, kind, observer, &runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::{graded_rc_ladder, positive_feedback_ota, rc_ladder};
    use refgen_circuit::Circuit;

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    /// Exact ladder denominator coefficients via the ABCD chain recurrence
    /// (see `tests/` for the dd-precision version): for the unit ladder
    /// (R = C = 1) the recursion over sections is exact in small integers.
    fn unit_ladder_denominator(n: usize) -> Vec<f64> {
        // State: (A(s), B(s)) polynomials such that V_in = A·V_out,
        // I_in = … — derive by walking the ladder from the output end:
        // v_{k} = v_{k-1}·(1 + sRC) + i_{k-1}·R; i_k = i_{k-1} + sC·v_k.
        // With R = C = 1 and rational bookkeeping in f64 (coefficients are
        // small integers for moderate n).
        let mut v = vec![1.0]; // v(out) = 1
        let mut i = vec![0.0, 1.0]; // i through the last cap = s·C·v = s
        for _ in 1..n {
            // v_new = v + R·i ; i_new = i + s·C·v_new
            let mut v_new = vec![0.0; v.len().max(i.len())];
            for (k, &c) in v.iter().enumerate() {
                v_new[k] += c;
            }
            for (k, &c) in i.iter().enumerate() {
                v_new[k] += c;
            }
            let mut i_new = vec![0.0; v_new.len() + 1];
            for (k, &c) in i.iter().enumerate() {
                i_new[k] += c;
            }
            for (k, &c) in v_new.iter().enumerate() {
                i_new[k + 1] += c;
            }
            v = v_new;
            i = i_new;
        }
        // v(in) = v + R·i — the denominator polynomial (numerator is 1).
        let mut d = vec![0.0; v.len().max(i.len())];
        for (k, &c) in v.iter().enumerate() {
            d[k] += c;
        }
        for (k, &c) in i.iter().enumerate() {
            d[k] += c;
        }
        d
    }

    #[test]
    fn unit_ladder_exact_coefficients() {
        // R = C = 1 ladder: compare against the exact integer recurrence.
        let n = 6;
        let c = rc_ladder(n, 1.0, 1.0);
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        let want = unit_ladder_denominator(n);
        let got = nf.denominator.coeffs();
        assert_eq!(got.len(), want.len());
        // The MNA determinant equals the ladder polynomial up to a constant
        // (source-branch sign/element product), so compare ratios to p0.
        let p0 = got[0].re().to_f64();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            let ratio = g.re().to_f64() / p0;
            let rel = (ratio - w).abs() / w;
            assert!(rel < 1e-9, "coeff {i}: got ratio {ratio} want {w}");
            assert!(g.im().to_f64().abs() < 1e-9 * g.re().to_f64().abs(), "imag of coeff {i}");
        }
        // Numerator of the ladder is a constant (degree 0) and H(0) = 1.
        assert_eq!(nf.numerator.degree(), Some(0));
        assert!((nf.dc_gain() - Complex::ONE).abs() < 1e-9);
    }

    #[test]
    fn ic_valued_ladder_needs_multiple_windows() {
        // R = 1 kΩ, C = 1 nF over 30 sections at IC-like values forces the
        // coefficient spread well past 13 decades.
        let n = 30;
        let c = rc_ladder(n, 1e3, 1e-9);
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        assert_eq!(nf.denominator.degree(), Some(n));
        let rep = &nf.report.denominator;
        assert!(
            rep.windows.len() >= 2,
            "expected multiple interpolations, got {}",
            rep.windows.len()
        );
        // All coefficients of an RC-ladder denominator share one sign (the
        // MNA determinant carries a global ± from the source branch).
        let sign = nf.denominator.coeffs()[0].re().signum();
        for (i, coeff) in nf.denominator.coeffs().iter().enumerate() {
            assert!(coeff.re().signum() == sign, "coefficient {i} flipped sign");
        }
        // Consecutive-coefficient ratios are ~G/C = 1e6 per step (the
        // paper's §2.2 argument), modulated by the ladder's combinatorial
        // factors (up to ~n²/2 ≈ 10^2.7 near the ends).
        for w in nf.denominator.coeffs().windows(2) {
            let ratio = (w[0].norm() / w[1].norm()).log10();
            assert!(ratio > 2.5 && ratio < 9.5, "ratio 1e{ratio:.1}");
        }
    }

    #[test]
    fn scaled_ladder_matches_unit_ladder_analytically() {
        // D(s) for (R, C) relates to the unit ladder by s → RC·s and a
        // factor g^M: check coefficient *ratios* p_i/p_0 = unit_i·(RC)^i.
        let n = 8;
        let (r, cap) = (1e3, 1e-9);
        let c = rc_ladder(n, r, cap);
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        let unit = unit_ladder_denominator(n);
        let got = nf.denominator.coeffs();
        let rc = ExtFloat::from_f64(r * cap);
        for i in 1..=n {
            let expect = ExtFloat::from_f64(unit[i] / unit[0]) * rc.powi(i as i64);
            let actual = got[i].norm() / got[0].norm();
            let rel = ((actual / expect).log10()).abs();
            assert!(rel < 1e-6, "i={i}: ratio off by 1e{rel:.2}");
        }
    }

    #[test]
    fn ota_ninth_order_denominator() {
        let c = positive_feedback_ota();
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        // 9 state nodes → denominator order 9 (the paper's OTA estimate).
        assert_eq!(nf.denominator.degree(), Some(9), "report: {:?}", nf.report.denominator);
        // Consecutive-coefficient ratios within the paper's 1e6..1e12 band.
        let coeffs = nf.denominator.coeffs();
        for (i, w) in coeffs.windows(2).enumerate() {
            if w[1].is_zero() {
                continue;
            }
            let ratio = (w[0].norm() / w[1].norm()).log10();
            assert!(ratio > 5.0 && ratio < 13.0, "ratio p{i}/p{} = 1e{ratio:.1}", i + 1);
        }
    }

    #[test]
    fn reduction_reduces_point_counts() {
        let c = rc_ladder(24, 1e3, 1e-9);
        let with = AdaptiveInterpolator::new(RefgenConfig { reduce: true, ..Default::default() })
            .polynomial(&c, &spec(), PolyKind::Denominator)
            .unwrap()
            .1;
        let without =
            AdaptiveInterpolator::new(RefgenConfig { reduce: false, ..Default::default() })
                .polynomial(&c, &spec(), PolyKind::Denominator)
                .unwrap()
                .1;
        assert!(
            with.total_points < without.total_points,
            "reduced {} vs unreduced {}",
            with.total_points,
            without.total_points
        );
        // Reduced windows after the first must use fewer points each.
        for w in with.windows.iter().skip(1).filter(|w| w.reduced) {
            assert!(w.points <= 24);
        }
    }

    #[test]
    fn graded_ladder_still_converges() {
        let c = graded_rc_ladder(12, 1e3, 1e-12, 1.8, 0.6);
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        assert_eq!(nf.denominator.degree(), Some(12));
        let warnings: Vec<_> = nf.report.denominator.warnings().collect();
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn numerator_with_zeros() {
        // A twin-T-ish notch: numerator has interior structure. Build a
        // simple band-pass RC (series C, shunt R): N(s) has a zero at 0.
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_capacitor("C1", "in", "out", 1e-9).unwrap();
        c.add_resistor("R1", "out", "0", 1e3).unwrap();
        c.add_capacitor("C2", "out", "0", 1e-10).unwrap();
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        // H = sRC1/(1 + sR(C1+C2)): numerator degree 1 with p0 = 0.
        assert_eq!(nf.numerator.degree(), Some(1));
        assert!(
            nf.numerator.coeffs()[0].is_zero() || {
                let r = (nf.numerator.coeffs()[0].norm() / nf.numerator.coeffs()[1].norm()).log10();
                r < -6.0
            }
        );
        // And the zero at the origin shows up in the roots.
        let zeros = nf.zeros();
        assert_eq!(zeros.len(), 1);
    }

    #[test]
    fn rejects_capless() {
        let mut c2 = Circuit::new();
        c2.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c2.add_resistor("R1", "in", "out", 1e3).unwrap();
        c2.add_resistor("R2", "out", "0", 1e3).unwrap();
        assert!(matches!(
            AdaptiveInterpolator::default().network_function(&c2, &spec()),
            Err(RefgenError::NoReactiveElements)
        ));
    }

    #[test]
    fn inductor_circuit_uses_frequency_only_mode() {
        // Series RL: H(s) = R/(R + sL), pole at -R/L = -5e7 rad/s.
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_inductor("L1", "in", "out", 1e-6).unwrap();
        c.add_resistor("R1", "out", "0", 50.0).unwrap();
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        assert_eq!(nf.denominator.degree(), Some(1));
        // Frequency-only mode pins g at 1 in every window.
        for w in &nf.report.denominator.windows {
            assert_eq!(w.scale.g, 1.0);
        }
        let poles = nf.poles();
        assert_eq!(poles.len(), 1);
        let p = poles[0].to_complex();
        assert!((p.re + 5e7).abs() / 5e7 < 1e-6, "pole {p}");
        assert!((nf.dc_gain() - Complex::ONE).abs() < 1e-9);
    }

    #[test]
    fn series_rlc_resonator() {
        // Series RLC driven by V source, output across C:
        // H(s) = 1/(1 + sRC + s²LC). f0 = 1/(2π√(LC)), Q = (1/R)·√(L/C).
        let (r, l, cap) = (10.0, 1e-6, 1e-9);
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "a", r).unwrap();
        c.add_inductor("L1", "a", "out", l).unwrap();
        c.add_capacitor("C1", "out", "0", cap).unwrap();
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        assert_eq!(nf.denominator.degree(), Some(2));
        // Coefficient ratios: d1/d0 = RC, d2/d0 = LC.
        let d = nf.denominator.coeffs();
        let d1 = (d[1] / d[0]).re().to_f64();
        let d2 = (d[2] / d[0]).re().to_f64();
        assert!((d1 - r * cap).abs() / (r * cap) < 1e-6, "d1 {d1}");
        assert!((d2 - l * cap).abs() / (l * cap) < 1e-6, "d2 {d2}");
        // Resonant peaking: |H(jω0)| = Q = √(L/C)/R ≈ 3.16.
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * cap).sqrt());
        let q = (l / cap).sqrt() / r;
        let h = nf.response_at_hz(f0);
        assert!((h.abs() - q).abs() / q < 1e-6, "peak {} vs Q {q}", h.abs());
    }

    #[test]
    fn ccvs_circuit_recovers() {
        // A CCVS-loaded RC: transresistance feedback.
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "a", 1e3).unwrap();
        c.add_capacitor("C1", "a", "0", 1e-9).unwrap();
        c.add_ccvs("H1", "b", "0", "VIN", 2e3).unwrap();
        c.add_resistor("R2", "b", "out", 1e3).unwrap();
        c.add_capacitor("C2", "out", "0", 1e-9).unwrap();
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        assert!(nf.denominator.degree().is_some());
        // Cross-check against the AC simulator at a few frequencies.
        let ac = refgen_mna::AcAnalysis::new(&c, spec()).unwrap();
        for f in [1e2, 1e5, 1e7] {
            let sim = ac.at(f).unwrap().response;
            let poly = nf.response_at_hz(f);
            assert!((poly - sim).abs() / sim.abs() < 1e-8, "at {f} Hz");
        }
    }

    #[test]
    fn transimpedance_with_current_source_input() {
        // Current-source input exercises the numerator cofactor's reduced
        // admittance degree (M_N = M − 1): H = v(out)/i has units of Ω.
        let mut c = Circuit::new();
        c.add_isource("IIN", "0", "in", 1e-3).unwrap();
        c.add_resistor("R1", "in", "0", 2e3).unwrap();
        c.add_capacitor("C1", "in", "0", 1e-9).unwrap();
        c.add_resistor("R2", "in", "out", 5e3).unwrap();
        c.add_capacitor("C2", "out", "0", 0.2e-9).unwrap();
        c.add_resistor("R3", "out", "0", 10e3).unwrap();
        let spec = TransferSpec::voltage_gain("IIN", "out");
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec).unwrap();
        // DC transimpedance: v(out)/i with the resistive divider:
        // in-node sees R1 ∥ (R2+R3) = 2k ∥ 15k; out = v(in)·R3/(R2+R3).
        let rin = 1.0 / (1.0 / 2e3 + 1.0 / 15e3);
        let want = rin * 10e3 / 15e3;
        assert!((nf.dc_gain().re - want).abs() / want < 1e-9, "dc {} vs {want}", nf.dc_gain().re);
        // Against the AC simulator at speed.
        let ac = refgen_mna::AcAnalysis::new(&c, spec).unwrap();
        for f in [1e3, 1e5, 1e6, 1e8] {
            let sim = ac.at(f).unwrap().response;
            let poly = nf.response_at_hz(f);
            assert!((poly - sim).abs() / sim.abs() < 1e-9, "at {f} Hz");
        }
    }

    #[test]
    fn vcvs_biquad_through_engine() {
        // Tow-Thomas uses three VCVS branches: exercises branch-equation
        // homogeneity (M = dim − 2B) inside the interpolation engine.
        let c = refgen_circuit::library::tow_thomas_biquad(10e3, 5.0, 1e5);
        let spec = spec();
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec).unwrap();
        let ac = refgen_mna::AcAnalysis::new(&c, spec).unwrap();
        for f in [1e2, 9e3, 10e3, 11e3, 1e6] {
            let sim = ac.at(f).unwrap().response;
            let poly = nf.response_at_hz(f);
            assert!((poly - sim).abs() / sim.abs() < 1e-7, "at {f} Hz: {poly} vs {sim}");
        }
        // Band-pass resonance at f0 with the expected Q-peaking.
        let peak = nf.response_at_hz(10e3).abs();
        assert!(peak > 3.0 * nf.response_at_hz(1e2).abs());
    }

    #[test]
    fn differential_output_through_engine() {
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "p", 1e3).unwrap();
        c.add_capacitor("C1", "p", "0", 1e-9).unwrap();
        c.add_resistor("R2", "in", "m", 1e3).unwrap();
        c.add_capacitor("C2", "m", "0", 2e-9).unwrap();
        let spec = TransferSpec::differential_gain("VIN", "p", "m");
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec).unwrap();
        // H = 1/(1+sτ1) − 1/(1+sτ2): zero DC gain, band-pass-ish shape.
        assert!(nf.dc_gain().abs() < 1e-9);
        let ac = refgen_mna::AcAnalysis::new(&c, spec).unwrap();
        for f in [1e4, 2e5, 1e7] {
            let sim = ac.at(f).unwrap().response;
            let poly = nf.response_at_hz(f);
            assert!((poly - sim).abs() / sim.abs() < 1e-8, "at {f} Hz");
        }
    }

    #[test]
    fn budget_exhaustion_reports_missing() {
        // One interpolation cannot tile a 30-section IC-valued ladder.
        let c = rc_ladder(30, 1e3, 1e-9);
        let cfg = RefgenConfig { max_interpolations: 1, verify: false, ..Default::default() };
        match AdaptiveInterpolator::new(cfg).polynomial(&c, &spec(), PolyKind::Denominator) {
            Err(RefgenError::DidNotConverge { missing }) => {
                assert!(!missing.is_empty());
            }
            other => panic!("expected DidNotConverge, got {:?}", other.map(|_| "ok")),
        }
    }

    #[test]
    fn network_function_with_reuses_system() {
        let c = rc_ladder(4, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let interp = AdaptiveInterpolator::default();
        let a = interp.network_function_with(&sys, &spec()).unwrap();
        let b = interp.network_function(&c, &spec()).unwrap();
        for (x, y) in a.denominator.coeffs().iter().zip(b.denominator.coeffs()) {
            assert!(((*x - *y).norm() / y.norm()).to_f64() < 1e-12);
        }
    }

    #[test]
    fn accept_window_flags_cross_check_mismatch() {
        use crate::diagnostic::CollectObserver;
        // Two overlapping windows that disagree on coefficient 0 by 1%:
        // far beyond the acceptance tolerance, so the merge must emit a
        // CrossCheckMismatch and keep the higher-quality value.
        let interp = AdaptiveInterpolator::default();
        let window = |v: f64, quality_decades: f64| Window {
            scale: Scale::unit(),
            offset: 0,
            normalized: vec![ExtComplex::new(Complex::new(v, 0.0), 0)],
            threshold: ExtFloat::from_f64(v) * ExtFloat::exp10(-quality_decades),
            max_idx: 0,
            region: Some((0, 0)),
            points: 1,
            reduced: false,
            noise_floor: ExtFloat::ZERO,
            threads: 1,
            refactor_hits: 0,
            compiled_hits: 0,
            mirrored: 0,
            recovered_fresh: 0,
            recovered_reordered: 0,
            ordering: None,
        };
        let mut accepted = BTreeMap::new();
        let mut report = PolyReport {
            kind: PolyKind::Denominator,
            windows: Vec::new(),
            declared_zero: Vec::new(),
            diagnostics: Vec::new(),
            order_bound: 0,
            effective_degree: None,
            total_points: 0,
            refactor_hits: 0,
        };
        let mut obs = CollectObserver::new();
        interp.accept_window(&window(1.0, 9.0), 0, &mut accepted, &mut report, &mut obs);
        assert!(obs.events.is_empty(), "first window has nothing to disagree with");
        interp.accept_window(&window(1.01, 5.0), 0, &mut accepted, &mut report, &mut obs);
        let mismatches: Vec<_> = obs
            .events
            .iter()
            .filter(|d| matches!(d, Diagnostic::CrossCheckMismatch { .. }))
            .collect();
        assert_eq!(mismatches.len(), 1, "events: {:?}", obs.events);
        match mismatches[0] {
            Diagnostic::CrossCheckMismatch { kind, index, rel_err } => {
                assert_eq!(*kind, PolyKind::Denominator);
                assert_eq!(*index, 0);
                assert!((rel_err - 0.01).abs() < 1e-3, "rel {rel_err}");
            }
            _ => unreachable!(),
        }
        // Streamed and recorded trails agree, and the better value wins.
        assert_eq!(report.diagnostics, obs.events);
        let kept = accepted.get(&0).expect("still accepted").value;
        assert!((kept.to_complex().re - 1.0).abs() < 1e-12, "higher quality kept: {kept:?}");
    }

    #[test]
    fn network_function_evaluation() {
        let c = rc_ladder(1, 1e3, 1e-9);
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        // H(0) = 1; pole at -1/RC.
        assert!((nf.dc_gain() - Complex::ONE).abs() < 1e-9);
        let poles = nf.poles();
        assert_eq!(poles.len(), 1);
        let p = poles[0].to_complex();
        assert!((p.re + 1e6).abs() / 1e6 < 1e-6, "pole {p}");
        // |H| at the pole frequency.
        let h = nf.response_at_hz(1e6 / (2.0 * std::f64::consts::PI));
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
    }
}
