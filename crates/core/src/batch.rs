//! Batched evaluation of one window's unit-circle samples — the execute
//! half of the plan/execute sampling engine.
//!
//! [`interpolate_window`](crate::window::interpolate_window) builds one
//! [`BatchSampler`] per window: a compiled
//! [`SweepPlan`](refgen_mna::SweepPlan) for the window's
//! `(MnaSystem, Scale)` pair, shared read-only across
//! [`refgen_exec::par_map_indexed`] workers that each own a
//! [`SweepScratch`](refgen_mna::SweepScratch). Three properties matter:
//!
//! * **Pivot-order reuse** — the plan records one pivot order at build
//!   time; every sample is a numeric refactorization into the worker's
//!   reused workspace (no pivot search, no steady-state allocation). This
//!   holds at `threads = 1` too: the sequential path is the same code with
//!   one worker.
//! * **Determinism** — every sample is a pure function of `(plan, σ)`
//!   (scratches never adopt fallback orders here), and results are
//!   collected in index order, so solver output is bit-identical at any
//!   thread count.
//! * **Honest accounting** — the batch reports how many points actually
//!   reused the recorded order ([`BatchStats::refactor_hits`]), surfaced
//!   as [`Diagnostic::SamplingBatched`](crate::Diagnostic) through the
//!   normal emit path.

use crate::error::RefgenError;
use crate::runtime::SamplingRuntime;
use crate::window::{PolyKind, Sampler};
use refgen_mna::{MnaError, Scale, SweepPlan, SweepScratch};
use refgen_numeric::{Complex, ExtComplex};

/// What one batch cost and how it ran.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BatchStats {
    /// Worker threads actually used (after resolving `threads = 0` and
    /// capping at the point count).
    pub threads: usize,
    /// Points that replayed the window plan's recorded pivot order.
    pub refactor_hits: u64,
}

/// A window's sampling plan: evaluates one polynomial of the network
/// function at scaled unit-circle points, in parallel, deterministically.
pub(crate) struct BatchSampler {
    plan: SweepPlan,
    kind: PolyKind,
}

impl BatchSampler {
    /// Compiles the plan for one window of `sampler` at `scale`, sharing
    /// pivot orders through the runtime's plan cache (one probe per
    /// distinct scale region per topology — verify re-interpolations and
    /// batch-session variants reuse recorded orders).
    pub fn new(
        sampler: &Sampler<'_>,
        scale: Scale,
        runtime: &SamplingRuntime,
    ) -> Result<BatchSampler, RefgenError> {
        let cache = runtime.plan_cache();
        let plan = match sampler.kind {
            // Determinant sampling needs no spec (and must not require
            // one: a denominator-only solve may have no resolvable
            // source at all).
            PolyKind::Denominator => SweepPlan::for_determinant_cached(sampler.sys, scale, cache),
            PolyKind::Numerator => SweepPlan::new_cached(sampler.sys, scale, sampler.spec, cache)?,
        };
        Ok(BatchSampler { plan, kind: sampler.kind })
    }

    /// Evaluates the polynomial at every `σ` on the runtime's executor
    /// (scoped threads or the persistent pool — bit-identical either way),
    /// returning samples in input order.
    ///
    /// # Errors
    ///
    /// The lowest-index point's [`MnaError`], if any point fails (only
    /// numerator sampling can fail — a singular determinant sample is a
    /// legitimate zero).
    pub fn sample_all(
        &self,
        sigmas: &[Complex],
        runtime: &SamplingRuntime,
    ) -> Result<(Vec<ExtComplex>, BatchStats), RefgenError> {
        let executor = runtime.executor();
        let threads = refgen_exec::effective_threads(executor.threads(), sigmas.len());
        let plan = &self.plan;
        let kind = self.kind;
        let results: Vec<(Result<ExtComplex, MnaError>, u64)> =
            executor.par_map_indexed(sigmas, SweepScratch::new, |_, &sigma, scratch| {
                let hits_before = scratch.stats().refactor_hits;
                let value = match kind {
                    PolyKind::Denominator => Ok(plan.eval_det(sigma, scratch)),
                    PolyKind::Numerator => plan.eval_at(sigma, scratch).map(|r| r.numerator),
                };
                (value, scratch.stats().refactor_hits - hits_before)
            });
        let mut samples = Vec::with_capacity(results.len());
        let mut refactor_hits = 0u64;
        for (value, hits) in results {
            refactor_hits += hits;
            samples.push(value.map_err(RefgenError::from)?);
        }
        Ok((samples, BatchStats { threads, refactor_hits }))
    }
}
