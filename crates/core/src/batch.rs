//! Batched evaluation of one window's unit-circle samples — the execute
//! half of the plan/execute sampling engine.
//!
//! [`interpolate_window`](crate::window::interpolate_window) builds one
//! [`BatchSampler`] per window: a compiled
//! [`SweepPlan`](refgen_mna::SweepPlan) for the window's
//! `(MnaSystem, Scale)` pair, shared read-only across
//! [`refgen_exec::par_map_indexed`] workers that each own a
//! [`SweepScratch`](refgen_mna::SweepScratch). Five properties matter:
//!
//! * **Pivot-order reuse** — the plan records one pivot order at build
//!   time and compiles a `FactorProgram` from it; every sample is a flat
//!   instruction-stream replay into the worker's reused scratch (no pivot
//!   search, no sorting/searching/insertion, no steady-state allocation).
//!   This holds at `threads = 1` too: the sequential path is the same code
//!   with one worker.
//! * **Conjugate-pair halving** — when the plan's pattern and RHS are real
//!   ([`SweepPlan::conjugate_symmetric`]) and the configuration allows it,
//!   only the closed upper half of the window's conjugate-paired σ set is
//!   solved; every lower-half point is the exact complex conjugate of its
//!   partner. IEEE arithmetic is conjugate-equivariant and
//!   `unit_circle_points` generates the pairs bit-exactly, so mirrored
//!   output is **bit-identical** to the full sweep — only wall-clock
//!   changes (`REFGEN_TEST_CONJ=off` forces the full sweep to prove it).
//! * **Lane batching** — with `config.lane_width > 1` the solved points
//!   are chunked into lane-width groups, each group replayed through the
//!   compiled kernel in **one** instruction-stream traversal
//!   ([`SweepPlan::eval_batch`] / [`SweepPlan::eval_det_batch`]); per live
//!   lane the batched replay performs the exact scalar operation sequence
//!   of a one-point evaluation and dead lanes fall back to it verbatim,
//!   so output is bit-identical at every lane width. Batching composes
//!   with, and is orthogonal to, threading: chunks fan out across the
//!   same executor.
//! * **Determinism** — every sample is a pure function of `(plan, σ)`
//!   (scratches never adopt fallback orders here), mirroring depends only
//!   on the σ values, and results are collected in index order, so solver
//!   output is bit-identical at any thread count.
//! * **Honest accounting** — the batch reports how many points reused the
//!   recorded order ([`BatchStats::refactor_hits`]), how many of those ran
//!   the compiled kernel ([`BatchStats::compiled_hits`]), and how many
//!   were mirrored ([`BatchStats::mirrored`]), surfaced as
//!   [`Diagnostic::SamplingBatched`](crate::Diagnostic) through the normal
//!   emit path.

use crate::config::RefgenConfig;
use crate::error::RefgenError;
use crate::runtime::SamplingRuntime;
use crate::window::{PolyKind, Sampler};
use refgen_mna::{MnaError, Scale, SweepBatchScratch, SweepPlan, SweepScratch};
use refgen_numeric::{Complex, ExtComplex};
use std::collections::HashMap;

/// What one batch cost and how it ran.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BatchStats {
    /// Worker threads actually used (after resolving `threads = 0` and
    /// capping at the solved-point count). Reported per *point*, not per
    /// lane chunk, so the figure — and every diagnostic built from it —
    /// is independent of `lane_width`.
    pub threads: usize,
    /// Solved points that replayed the window plan's recorded pivot order.
    pub refactor_hits: u64,
    /// The subset of `refactor_hits` that ran the compiled symbolic kernel.
    pub compiled_hits: u64,
    /// Points mirrored from a conjugate partner instead of solved.
    pub mirrored: u64,
    /// Points rescued by rung 1 of the singular-recovery ladder (fresh
    /// Markowitz after a dead replay).
    pub recovered_fresh: u64,
    /// Points rescued by rung 2 (alternate-ordering recompile).
    pub recovered_reordered: u64,
}

/// How one requested σ point is obtained: solved directly (index into the
/// solve list) or mirrored from a solved conjugate partner.
enum Role {
    Direct(usize),
    Mirror(usize),
}

/// A window's sampling plan: evaluates one polynomial of the network
/// function at scaled unit-circle points, in parallel, deterministically.
pub(crate) struct BatchSampler {
    plan: SweepPlan,
    kind: PolyKind,
    /// Conjugate-pair halving is active: the configuration asked for it
    /// and the plan's pattern/RHS are real.
    mirror: bool,
    /// Lane width for variant-major batched replay (`config.lane_width`):
    /// solved points are chunked into groups of this size, each group
    /// driven through one instruction-stream traversal. `1` keeps the
    /// per-point path; results are bit-identical at every width.
    lanes: usize,
}

impl BatchSampler {
    /// Compiles the plan for one window of `sampler` at `scale`, sharing
    /// pivot orders *and compiled symbolic kernels* through the runtime's
    /// plan cache (one probe + one `FactorProgram` per distinct scale
    /// region per topology — verify re-interpolations and batch-session
    /// variants reuse both).
    pub fn new(
        sampler: &Sampler<'_>,
        scale: Scale,
        config: &RefgenConfig,
        runtime: &SamplingRuntime,
    ) -> Result<BatchSampler, RefgenError> {
        let cache = runtime.plan_cache();
        let plan = match sampler.kind {
            // Determinant sampling needs no spec (and must not require
            // one: a denominator-only solve may have no resolvable
            // source at all).
            PolyKind::Denominator => SweepPlan::for_determinant_cached_with_ordering(
                sampler.sys,
                scale,
                cache,
                config.ordering,
            ),
            PolyKind::Numerator => SweepPlan::new_cached_with_ordering(
                sampler.sys,
                scale,
                sampler.spec,
                cache,
                config.ordering,
            )?,
        };
        let mirror = config.conjugate_mirror && plan.conjugate_symmetric();
        let lanes = config.lane_width.max(1);
        Ok(BatchSampler { plan, kind: sampler.kind, mirror, lanes })
    }

    /// The plan's pivot-ordering decision with the system dimension, for
    /// the ordering diagnostic (`None` when the probe was singular and no
    /// order could be recorded).
    pub fn ordering(&self) -> Option<(usize, refgen_mna::OrderingChoice)> {
        self.plan.ordering_choice().map(|c| (self.plan.dim(), c))
    }

    /// Evaluates the polynomial at every `σ` on the runtime's executor
    /// (scoped threads or the persistent pool — bit-identical either way),
    /// returning samples in input order. With mirroring active, only the
    /// closed upper half-circle is solved; each lower-half σ whose exact
    /// conjugate appears in the set is mirrored from its partner.
    ///
    /// # Errors
    ///
    /// The lowest-index point's [`MnaError`], if any point fails (only
    /// numerator sampling can fail — a singular determinant sample is a
    /// legitimate zero). A mirrored point inherits its partner's failure.
    pub fn sample_all(
        &self,
        sigmas: &[Complex],
        runtime: &SamplingRuntime,
    ) -> Result<(Vec<ExtComplex>, BatchStats), RefgenError> {
        // Assign roles: a fixed function of the σ values alone, so the
        // partition is identical at any thread count under any executor.
        let bits = |s: Complex| (s.re.to_bits(), s.im.to_bits());
        let mut solve: Vec<Complex> = Vec::with_capacity(sigmas.len());
        let mut roles: Vec<Role> = Vec::with_capacity(sigmas.len());
        if self.mirror {
            let mut upper: HashMap<(u64, u64), usize> = HashMap::with_capacity(sigmas.len());
            for &s in sigmas {
                if s.im >= 0.0 {
                    upper.entry(bits(s)).or_insert_with(|| {
                        solve.push(s);
                        solve.len() - 1
                    });
                }
            }
            for &s in sigmas {
                if s.im >= 0.0 {
                    roles.push(Role::Direct(upper[&bits(s)]));
                } else if let Some(&k) = upper.get(&bits(s.conj())) {
                    roles.push(Role::Mirror(k));
                } else {
                    // No exact partner in the set (not a conjugate-paired
                    // grid): solve it directly.
                    solve.push(s);
                    roles.push(Role::Direct(solve.len() - 1));
                }
            }
        } else {
            solve.extend_from_slice(sigmas);
            roles.extend((0..sigmas.len()).map(Role::Direct));
        }

        let executor = runtime.executor();
        // Reported per point regardless of lane chunking, so diagnostics
        // stay bit-identical across lane widths.
        let threads = refgen_exec::effective_threads(executor.threads(), solve.len());
        let plan = &self.plan;
        let kind = self.kind;
        let (values, counters) = if self.lanes > 1 {
            // Variant-major batched replay: chunk the solve list into
            // lane-width groups, each group one instruction-stream
            // traversal through the compiled kernel. Per live lane the
            // replay performs the exact scalar operation sequence of the
            // per-point path, and dead lanes fall back to it verbatim, so
            // every value (and every counter) below is bit-identical to
            // the `lanes == 1` branch.
            // One lane group's output plus its counter deltas (refactor,
            // compiled, recovered-fresh, recovered-reordered).
            type ChunkOut = (Vec<Result<ExtComplex, MnaError>>, [u64; 4]);
            let chunks: Vec<&[Complex]> = solve.chunks(self.lanes).collect();
            let per_chunk: Vec<ChunkOut> =
                executor.par_map_indexed(&chunks, SweepBatchScratch::new, |_, chunk, scratch| {
                    let before = scratch.stats();
                    let values: Vec<Result<ExtComplex, MnaError>> = match kind {
                        PolyKind::Denominator => {
                            plan.eval_det_batch(chunk, scratch).into_iter().map(Ok).collect()
                        }
                        PolyKind::Numerator => plan
                            .eval_batch(chunk, scratch)
                            .into_iter()
                            .map(|r| r.map(|t| t.numerator))
                            .collect(),
                    };
                    let after = scratch.stats();
                    (
                        values,
                        [
                            after.refactor_hits - before.refactor_hits,
                            after.compiled_hits - before.compiled_hits,
                            after.recovered_fresh - before.recovered_fresh,
                            after.recovered_reordered - before.recovered_reordered,
                        ],
                    )
                });
            let mut values = Vec::with_capacity(solve.len());
            let mut counters = [0u64; 4];
            for (chunk_values, deltas) in per_chunk {
                values.extend(chunk_values);
                for (c, d) in counters.iter_mut().zip(deltas) {
                    *c += d;
                }
            }
            (values, counters)
        } else {
            let results: Vec<(Result<ExtComplex, MnaError>, [u64; 4])> =
                executor.par_map_indexed(&solve, SweepScratch::new, |_, &sigma, scratch| {
                    let before = scratch.stats();
                    let value = match kind {
                        PolyKind::Denominator => Ok(plan.eval_det(sigma, scratch)),
                        PolyKind::Numerator => plan.eval_at(sigma, scratch).map(|r| r.numerator),
                    };
                    let after = scratch.stats();
                    (
                        value,
                        [
                            after.refactor_hits - before.refactor_hits,
                            after.compiled_hits - before.compiled_hits,
                            after.recovered_fresh - before.recovered_fresh,
                            after.recovered_reordered - before.recovered_reordered,
                        ],
                    )
                });
            let mut values = Vec::with_capacity(solve.len());
            let mut counters = [0u64; 4];
            for (value, deltas) in results {
                values.push(value);
                for (c, d) in counters.iter_mut().zip(deltas) {
                    *c += d;
                }
            }
            (values, counters)
        };

        let mut mirrored = 0u64;
        let mut samples = Vec::with_capacity(sigmas.len());
        for role in &roles {
            let value = match *role {
                Role::Direct(k) => values[k].clone(),
                Role::Mirror(k) => {
                    mirrored += 1;
                    // Exact: conjugation only negates the mantissa's
                    // imaginary component.
                    values[k].clone().map(|v| v.conj())
                }
            };
            samples.push(value.map_err(RefgenError::from)?);
        }
        let [refactor_hits, compiled_hits, recovered_fresh, recovered_reordered] = counters;
        Ok((
            samples,
            BatchStats {
                threads,
                refactor_hits,
                compiled_hits,
                mirrored,
                recovered_fresh,
                recovered_reordered,
            },
        ))
    }
}
