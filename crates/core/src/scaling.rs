//! Scale-factor selection: initial heuristics and the adaptive updates of
//! eqs. (13)–(16).

use crate::config::RefgenConfig;
use crate::window::Window;
use refgen_circuit::Circuit;
use refgen_mna::Scale;
use refgen_numeric::stats::mean;

/// Direction of an adaptive scale step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Move the valid window toward higher powers of `s` (eq. (14)).
    Ascending,
    /// Move toward lower powers (eq. (15)).
    Descending,
}

/// How the two scale knobs are used.
///
/// The paper's simultaneous scaling splits each tilt between `f` and `g`
/// (§3.2 last ¶), which requires every determinant term to carry the same
/// number of admittance factors. Circuits with inductors or CCVS break that
/// homogeneity, but frequency scaling alone is a pure variable substitution
/// `s → f·σ` and remains exact for *any* linear circuit — so those circuits
/// are handled in [`ScalePolicy::FrequencyOnly`] mode with `g` pinned at 1
/// (an extension the paper defers to "transformation methods").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalePolicy {
    /// `f′ = f·√q`, `g′ = g/√q` — the paper's simultaneous scaling.
    Simultaneous,
    /// `f′ = f·q`, `g ≡ 1` — exact for every element kind.
    FrequencyOnly,
}

/// The paper's first-interpolation heuristic (§3.2): frequency scale factor
/// `f = 1/mean(C)`, conductance scale factor `g = 1/mean(G)`, which aims the
/// widest window at O(1) normalized element values.
///
/// # Panics
///
/// Panics if the circuit has no capacitors or no conductances (callers
/// check [`RefgenError::NoReactiveElements`](crate::RefgenError) first).
pub fn initial_scale(circuit: &Circuit) -> Scale {
    let caps = circuit.capacitor_values();
    let gs = circuit.conductance_values();
    let mc = mean(&caps).expect("circuit has capacitors");
    // Conductance-free circuits (pure capacitive dividers) scale with g = 1.
    let mg = mean(&gs).unwrap_or(1.0);
    Scale::new(1.0 / mc, 1.0 / mg)
}

/// Initial scale for [`ScalePolicy::FrequencyOnly`]: `g = 1` and `f` at the
/// geometric mean of the reactive elements' natural frequencies
/// (`G_mean/C` per capacitor, `1/(G_mean·L)` per inductor), which centres
/// the first valid window the same way the paper's mean heuristic does.
///
/// # Panics
///
/// Panics if the circuit has no reactive elements.
pub fn initial_scale_frequency_only(circuit: &Circuit) -> Scale {
    let gs = circuit.conductance_values();
    let g_mean = mean(&gs).unwrap_or(1.0);
    let mut logs: Vec<f64> = Vec::new();
    for c in circuit.capacitor_values() {
        logs.push((g_mean / c).ln());
    }
    for l in circuit.inductor_values() {
        logs.push((1.0 / (g_mean * l)).ln());
    }
    assert!(!logs.is_empty(), "circuit has reactive elements");
    let f0 = (logs.iter().sum::<f64>() / logs.len() as f64).exp();
    Scale::new(f0, 1.0)
}

/// Computes the next scale pair from the last window (eqs. (13)–(15)).
///
/// For an ascending step with last-valid index `e` and window maximum at
/// `m`, `q` solves `|p'_e|·q^e = |p'_m|·q^m·10^{13+r}` — after re-scaling,
/// the old last coefficient sits `13+r` decades above the old maximum, so
/// the new window starts right where the old one ended (minimal overlap).
/// The tilt is split between both knobs (`f′ = f·√q`, `g′ = g/√q`), the
/// paper's simultaneous-scaling guard against huge individual factors.
///
/// `extra_decades` escalates the step on stall retries (0 for the first
/// attempt).
pub fn step_scale(
    window: &Window,
    direction: Direction,
    extra_decades: f64,
    config: &RefgenConfig,
) -> Scale {
    step_scale_with_policy(window, direction, extra_decades, config, ScalePolicy::Simultaneous)
}

/// As [`step_scale`], with an explicit [`ScalePolicy`].
pub fn step_scale_with_policy(
    window: &Window,
    direction: Direction,
    extra_decades: f64,
    config: &RefgenConfig,
    policy: ScalePolicy,
) -> Scale {
    let (lo, hi) = window.region.expect("step_scale requires a window with a valid region");
    let m = window.max_idx;
    let decades = config.noise_decades + config.tuning_r + extra_decades;
    let log_q = match direction {
        Direction::Ascending => {
            let e = hi;
            if e > m {
                let ratio = (window.normalized_at(m).unwrap().norm()
                    / window.normalized_at(e).unwrap().norm())
                .log10();
                (ratio + decades) / (e - m) as f64
            } else {
                // Degenerate window (max is the last valid): push the whole
                // noise span per index.
                decades
            }
        }
        Direction::Descending => {
            let b = lo;
            if b < m {
                let ratio = (window.normalized_at(m).unwrap().norm()
                    / window.normalized_at(b).unwrap().norm())
                .log10();
                -((ratio + decades) / (m - b) as f64)
            } else {
                -decades
            }
        }
    };
    let log_q = log_q.clamp(-config.max_step_decades_per_index, config.max_step_decades_per_index);
    match policy {
        ScalePolicy::Simultaneous => {
            let sqrt_q = 10f64.powf(log_q / 2.0);
            Scale::new(window.scale.f * sqrt_q, window.scale.g / sqrt_q)
        }
        ScalePolicy::FrequencyOnly => {
            let q = 10f64.powf(log_q);
            Scale::new(window.scale.f * q, 1.0)
        }
    }
}

/// Gap-repair scale factors (eq. (16)): geometric means of the bracketing
/// windows' factors.
pub fn gap_repair_scale(a: Scale, b: Scale) -> Scale {
    let f = 10f64.powf((a.f.log10() + b.f.log10()) / 2.0);
    let g = 10f64.powf((a.g.log10() + b.g.log10()) / 2.0);
    Scale::new(f, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::rc_ladder;
    use refgen_numeric::{Complex, ExtComplex, ExtFloat};

    fn synthetic_window(scale: Scale, norms_log10: &[f64], offset: usize) -> Window {
        // Build a window directly from desired |p'_i| decades.
        let normalized: Vec<ExtComplex> = norms_log10
            .iter()
            .map(|&d| ExtComplex::from_complex(Complex::real(1.0)).scale_ext(ExtFloat::exp10(d)))
            .collect();
        let mut max_idx = 0;
        for (i, &d) in norms_log10.iter().enumerate() {
            if d > norms_log10[max_idx] {
                max_idx = i;
            }
        }
        let max = ExtFloat::exp10(norms_log10[max_idx]);
        let threshold = max * ExtFloat::exp10(-7.0);
        let valid: Vec<bool> =
            norms_log10.iter().map(|&d| ExtFloat::exp10(d) >= threshold).collect();
        let mut lo = max_idx;
        while lo > 0 && valid[lo - 1] {
            lo -= 1;
        }
        let mut hi = max_idx;
        while hi + 1 < valid.len() && valid[hi + 1] {
            hi += 1;
        }
        Window {
            scale,
            offset,
            normalized,
            threshold,
            max_idx: offset + max_idx,
            region: Some((offset + lo, offset + hi)),
            points: norms_log10.len(),
            reduced: false,
            noise_floor: max * ExtFloat::exp10(-13.0),
            threads: 1,
            refactor_hits: 0,
            compiled_hits: 0,
            mirrored: 0,
            recovered_fresh: 0,
            recovered_reordered: 0,
            ordering: None,
        }
    }

    #[test]
    fn initial_scale_heuristic() {
        let c = rc_ladder(3, 1e3, 1e-9);
        let s = initial_scale(&c);
        assert!((s.f - 1e9).abs() / 1e9 < 1e-12);
        assert!((s.g - 1e3).abs() / 1e3 < 1e-12);
    }

    #[test]
    fn ascending_step_tilts_up() {
        // Window: p0..p4 valid, max at p1, p4 is 6 decades below max.
        let w = synthetic_window(Scale::new(1e9, 1e3), &[-1.0, 0.0, -2.0, -4.0, -6.0, -20.0], 0);
        assert_eq!(w.region, Some((0, 4)));
        let cfg = RefgenConfig::default();
        let s2 = step_scale(&w, Direction::Ascending, 0.0, &cfg);
        // q^(e−m) = 10^{6+13} over e−m = 3 → q = 10^{19/3}; split between
        // the two knobs.
        let q = 10f64.powf(19.0 / 3.0);
        assert!((s2.f / (1e9 * q.sqrt()) - 1.0).abs() < 1e-9);
        assert!((s2.g * q.sqrt() / 1e3 - 1.0).abs() < 1e-9);
        // Tilt f/g increased by exactly q.
        assert!(((s2.f / s2.g) / (1e6 * q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn descending_step_tilts_down() {
        // Window: p2..p5 valid (offset 2), max at global 4.
        let w = synthetic_window(Scale::new(1e9, 1e3), &[-5.0, -2.0, 0.0, -1.0], 2);
        assert_eq!(w.region, Some((2, 5)));
        assert_eq!(w.max_idx, 4);
        let cfg = RefgenConfig::default();
        let s2 = step_scale(&w, Direction::Descending, 0.0, &cfg);
        assert!(s2.f < 1e9, "f must shrink, got {}", s2.f);
        assert!(s2.g > 1e3, "g must grow, got {}", s2.g);
        // q^(m−b) = 10^{5+13}, m−b = 2 → q = 10^{-9}, clamped to the
        // per-index LU-health cap.
        let q = 10f64.powf(-cfg.max_step_decades_per_index);
        assert!(((s2.f / s2.g) / (1e6 * q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_single_coefficient_window() {
        let w = synthetic_window(Scale::new(1e9, 1e3), &[0.0, -30.0, -30.0], 0);
        assert_eq!(w.region, Some((0, 0)));
        let cfg = RefgenConfig::default();
        let s2 = step_scale(&w, Direction::Ascending, 0.0, &cfg);
        // The full noise span (13 decades per index) is clamped to the
        // LU-health cap.
        let q = 10f64.powf(cfg.max_step_decades_per_index);
        assert!(((s2.f / s2.g) / (1e6 * q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extra_decades_escalate_until_clamp() {
        // A window wide enough that the base step stays under the clamp.
        let w = synthetic_window(Scale::new(1e9, 1e3), &[0.0, -1.5, -3.0, -4.5, -6.0, -30.0], 0);
        assert_eq!(w.region, Some((0, 4)));
        let cfg = RefgenConfig::default();
        let s1 = step_scale(&w, Direction::Ascending, 0.0, &cfg);
        let s2 = step_scale(&w, Direction::Ascending, 10.0, &cfg);
        assert!(s2.f / s2.g > s1.f / s1.g);
        // And the clamp bounds arbitrarily large escalation.
        let s3 = step_scale(&w, Direction::Ascending, 1e6, &cfg);
        let max_q = 10f64.powf(cfg.max_step_decades_per_index);
        assert!((s3.f / s3.g) / 1e6 <= max_q * (1.0 + 1e-9));
    }

    #[test]
    fn gap_repair_geometric_mean() {
        let a = Scale::new(1e10, 1e2);
        let b = Scale::new(1e14, 1e-2);
        let m = gap_repair_scale(a, b);
        assert!((m.f - 1e12).abs() / 1e12 < 1e-9);
        assert!((m.g - 1.0).abs() < 1e-9);
    }
}
