//! Bode validation against the independent AC simulator (paper Fig. 2).
//!
//! The paper demonstrates correctness by overlaying the Bode diagram
//! computed from interpolated coefficients on one from a commercial
//! electrical simulator and observing "perfect matching". The equivalent
//! here compares [`NetworkFunction`] evaluation against
//! [`refgen_mna::AcAnalysis`] — a direct per-frequency LU solve sharing no
//! code with the interpolation path.

use crate::adaptive::NetworkFunction;
use crate::config::RefgenConfig;
use crate::error::RefgenError;
use refgen_circuit::Circuit;
use refgen_mna::{AcAnalysis, AcPoint, TransferSpec};

/// Outcome of a Bode cross-validation.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Frequencies compared (hertz).
    pub freqs_hz: Vec<f64>,
    /// Largest magnitude discrepancy, in dB.
    pub max_mag_err_db: f64,
    /// Largest phase discrepancy, in degrees (wrapped difference).
    pub max_phase_err_deg: f64,
    /// Frequency at which the magnitude error peaks.
    pub worst_freq_hz: f64,
}

impl ValidationReport {
    /// `true` if the match is within the given tolerances everywhere.
    pub fn matches_within(&self, mag_db: f64, phase_deg: f64) -> bool {
        self.max_mag_err_db <= mag_db && self.max_phase_err_deg <= phase_deg
    }
}

/// Compares interpolated-coefficient evaluation against the AC simulator
/// over a frequency grid.
///
/// # Errors
///
/// Propagates circuit/spec errors from the AC side.
pub fn validate_against_ac(
    nf: &NetworkFunction,
    circuit: &Circuit,
    spec: &TransferSpec,
    freqs_hz: &[f64],
) -> Result<ValidationReport, RefgenError> {
    let ac = AcAnalysis::new(circuit, spec.clone())?;
    let mut max_mag = 0.0f64;
    let mut max_phase = 0.0f64;
    let mut worst = freqs_hz.first().copied().unwrap_or(0.0);
    for &f in freqs_hz {
        let sim = ac.at(f)?;
        let poly = nf.response_at_hz(f);
        let mag_err = (20.0 * poly.abs().log10() - sim.mag_db()).abs();
        let mut dphase = poly.arg().to_degrees() - sim.phase_deg();
        while dphase > 180.0 {
            dphase -= 360.0;
        }
        while dphase < -180.0 {
            dphase += 360.0;
        }
        if mag_err > max_mag {
            max_mag = mag_err;
            worst = f;
        }
        max_phase = max_phase.max(dphase.abs());
    }
    Ok(ValidationReport {
        freqs_hz: freqs_hz.to_vec(),
        max_mag_err_db: max_mag,
        max_phase_err_deg: max_phase,
        worst_freq_hz: worst,
    })
}

/// Sweeps the independent AC simulator over `freqs_hz` on the path the
/// configuration selects: [`RefgenConfig::iterative`] turns on the hybrid
/// anchored-GMRES sweep ([`AcAnalysis::sweep_hybrid`]) — the mesh-scale
/// fast path, accurate to the GMRES tolerance — while the default takes
/// the compiled direct sweep ([`AcAnalysis::sweep_fast`]). This is the
/// knob's single consumer: the interpolation engine itself always samples
/// through direct factorization (its determinant extraction has no
/// iterative equivalent).
///
/// # Errors
///
/// [`RefgenError::EmptyGrid`] for an empty `freqs_hz`; otherwise
/// propagates circuit/spec errors and the first singular frequency.
pub fn ac_sweep_with_config(
    circuit: &Circuit,
    spec: &TransferSpec,
    freqs_hz: &[f64],
    config: &RefgenConfig,
) -> Result<Vec<AcPoint>, RefgenError> {
    if freqs_hz.is_empty() {
        return Err(RefgenError::EmptyGrid);
    }
    let ac = AcAnalysis::new(circuit, spec.clone())?;
    let pts = if config.iterative { ac.sweep_hybrid(freqs_hz)? } else { ac.sweep_fast(freqs_hz)? };
    Ok(pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveInterpolator;
    use refgen_circuit::library::{positive_feedback_ota, rc_ladder};
    use refgen_mna::log_space;

    #[test]
    fn empty_grid_is_typed_error() {
        let c = rc_ladder(3, 1e3, 1e-9);
        let spec = TransferSpec::voltage_gain("VIN", "out");
        for iterative in [false, true] {
            let cfg = RefgenConfig { iterative, ..RefgenConfig::default() };
            match ac_sweep_with_config(&c, &spec, &[], &cfg) {
                Err(RefgenError::EmptyGrid) => {}
                other => panic!("expected EmptyGrid, got {:?}", other.map(|_| "ok")),
            }
        }
    }

    #[test]
    fn ladder_bode_matches() {
        let c = rc_ladder(12, 1e3, 1e-9);
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec).unwrap();
        let freqs = log_space(1.0, 1e9, 120);
        let rep = validate_against_ac(&nf, &c, &spec, &freqs).unwrap();
        assert!(
            rep.matches_within(1e-3, 0.1),
            "mag err {} dB at {} Hz, phase err {}°",
            rep.max_mag_err_db,
            rep.worst_freq_hz,
            rep.max_phase_err_deg
        );
    }

    #[test]
    fn butterworth_lc_ladder_maximally_flat() {
        // End-to-end frequency-only mode check against the closed form:
        // |H(jω)| = ½/√(1+(ω/ωc)^{2n}) for the doubly-terminated ladder.
        let n = 5;
        let f_c = 1e6;
        let c = refgen_circuit::library::lc_ladder_lowpass(n, 50.0, f_c);
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec).unwrap();
        assert_eq!(nf.denominator.degree(), Some(n));
        for f in log_space(1e4, 1e8, 40) {
            let want = 0.5 / (1.0 + (f / f_c).powi(2 * n as i32)).sqrt();
            let got = nf.response_at_hz(f).abs();
            assert!(
                (got - want).abs() / want < 1e-6,
                "at {f:.3e} Hz: got {got:.6e}, want {want:.6e}"
            );
        }
        // And the independent AC path agrees too.
        let rep = validate_against_ac(&nf, &c, &spec, &log_space(1e4, 1e8, 60)).unwrap();
        assert!(rep.matches_within(1e-6, 1e-4), "mag err {}", rep.max_mag_err_db);
    }

    #[test]
    fn iterative_sweep_matches_direct() {
        let c = refgen_circuit::library::random_rc_mesh(60, 90, 17);
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let freqs = log_space(1e3, 1e9, 80);
        let direct = ac_sweep_with_config(&c, &spec, &freqs, &RefgenConfig::default()).unwrap();
        let cfg = crate::RefgenConfig::builder().iterative(true).build();
        let hybrid = ac_sweep_with_config(&c, &spec, &freqs, &cfg).unwrap();
        for (a, b) in direct.iter().zip(&hybrid) {
            let rel = (a.response - b.response).abs() / a.response.abs().max(1e-300);
            assert!(rel < 1e-9, "at {} Hz: rel {rel:.2e}", a.freq_hz);
        }
    }

    #[test]
    fn ota_bode_matches() {
        let c = positive_feedback_ota();
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec).unwrap();
        let freqs = log_space(1.0, 1e10, 150);
        let rep = validate_against_ac(&nf, &c, &spec, &freqs).unwrap();
        assert!(
            rep.matches_within(0.01, 0.5),
            "mag err {} dB at {} Hz, phase err {}°",
            rep.max_mag_err_db,
            rep.worst_freq_hz,
            rep.max_phase_err_deg
        );
    }
}
