//! Typed diagnostic events and the [`Observer`] seam.
//!
//! Every solver in this crate narrates its progress as a stream of
//! [`Diagnostic`] values: one per interpolation window, plus the notable
//! decisions the paper's algorithm takes along the way (declaring trailing
//! coefficients zero, repairing a window gap by eq. (16) bisection,
//! rejecting a coefficient that disagrees between overlapping windows).
//! The same events are both
//!
//! * **streamed** to an [`Observer`] while the solve runs — the hook the
//!   ROADMAP's progress-reporting and parallel-sampling items need — and
//! * **accumulated** in the per-polynomial
//!   [`PolyReport`](crate::adaptive::PolyReport), so a finished
//!   [`Solution`](crate::solver::Solution) can be audited after the fact.
//!
//! They replace the free-form `Vec<String>` warnings of earlier revisions:
//! callers match on variants instead of grepping message text.

use crate::window::PolyKind;
use refgen_mna::Scale;
use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Normal algorithm progress (e.g. a window opened).
    Info,
    /// Something a careful caller should look at (e.g. a cross-check
    /// mismatch between overlapping windows).
    Warning,
}

/// One typed event emitted during a solve.
///
/// The enum is `#[non_exhaustive]`: future solvers may add variants, so
/// downstream `match`es need a wildcard arm.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Diagnostic {
    /// One interpolation window was computed (paper eq. (5) + eq. (12)).
    WindowOpened {
        /// Which polynomial was being recovered.
        kind: PolyKind,
        /// Scale factors of this interpolation.
        scale: Scale,
        /// Interpolation points spent (`K`).
        points: usize,
        /// Valid region captured (global coefficient indices, inclusive),
        /// or `None` when the window validated nothing.
        region: Option<(usize, usize)>,
        /// Whether the eq. (17) problem-size reduction was in effect.
        reduced: bool,
    },
    /// A contiguous range of coefficients was declared zero after adaptive
    /// re-tilts stalled — the paper's §3.3 true-order detection.
    CoefficientsDeclaredZero {
        /// Which polynomial.
        kind: PolyKind,
        /// Lowest declared index (inclusive).
        lo: usize,
        /// Highest declared index (inclusive).
        hi: usize,
    },
    /// A gap between two valid windows was closed by eq. (16) bisection.
    GapRepaired {
        /// Which polynomial.
        kind: PolyKind,
        /// Lowest coefficient index of the repaired gap.
        lo: usize,
        /// Highest coefficient index of the repaired gap.
        hi: usize,
    },
    /// A coefficient covered by two overlapping windows disagreed beyond
    /// the configured tolerance; the higher-quality value was kept.
    CrossCheckMismatch {
        /// Which polynomial.
        kind: PolyKind,
        /// Global coefficient index.
        index: usize,
        /// Relative disagreement between the two denormalized values.
        rel_err: f64,
    },
    /// Every sample of the polynomial was exactly zero (e.g. a degenerate
    /// circuit whose determinant vanishes identically).
    AllSamplesZero {
        /// Which polynomial.
        kind: PolyKind,
    },
    /// One window's unit-circle samples were evaluated as a batch on the
    /// plan/execute engine (one `SweepPlan` per window, executed by
    /// `refgen_exec`). Fires right after the window's
    /// [`Diagnostic::WindowOpened`].
    SamplingBatched {
        /// Points evaluated in the batch (conjugate-mirrored points
        /// included — they cost no solve but are part of the window).
        points: usize,
        /// Worker threads the batch actually used (after resolving the
        /// `threads = 0` auto knob and capping at the solved-point count).
        threads: usize,
        /// Solved points that reused the window plan's recorded pivot
        /// order (numeric refactorization, no pivot search); the remainder
        /// paid a fresh Markowitz factorization.
        refactor_hits: u64,
        /// The subset of `refactor_hits` that ran through the compiled
        /// symbolic kernel (`FactorProgram`): flat instruction-stream
        /// replay with zero per-point sorting, searching, insertion, or
        /// heap allocation.
        compiled_hits: u64,
        /// Points obtained as exact complex conjugates of a solved partner
        /// (`D(s̄) = conj(D(s))` on real-pattern systems) instead of their
        /// own factorization — the conjugate-pair halving.
        mirrored: u64,
    },
    /// A companion-model transient run finished
    /// ([`TransientAnalysis`](crate::TransientAnalysis)): the time-domain
    /// analogue of [`Diagnostic::SamplingBatched`], proving the run stayed
    /// on the compiled fast path.
    TransientStepped {
        /// Time steps integrated.
        steps: u64,
        /// Numeric factorizations that replayed the recorded pivot order —
        /// exactly one per run (the companion matrix is step-invariant).
        refactor_hits: u64,
        /// Linear solves that ran through the compiled `FactorProgram`
        /// (`steps` for backward Euler, `steps + 1` for the trapezoidal
        /// rule's startup primer).
        compiled_hits: u64,
    },
    /// The sampling plan for a pattern chose its pivot ordering: either
    /// the numeric Markowitz probe order was kept, or — when its realized
    /// fill crossed the mesh-scale threshold (or the configuration forced
    /// it) — a validated approximate-minimum-degree order replaced it.
    /// Fires when the reported decision differs from the previous window's
    /// (windows at nearby scales share a cached plan and its choice, so
    /// repeats are suppressed).
    OrderingSelected {
        /// System dimension (MNA matrix rows).
        dim: usize,
        /// Fill-in slots the Markowitz probe order realizes, when a probe
        /// succeeded (`None` under a forced-AMD configuration where the
        /// probe was skipped or singular).
        markowitz_fill: Option<usize>,
        /// Fill-in slots the AMD order realizes, when one was computed and
        /// passed validation (`None` when Markowitz won without a
        /// challenger).
        amd_fill: Option<usize>,
        /// Whether the AMD order was adopted.
        amd: bool,
    },
    /// One variant of a [`BatchSession`](crate::BatchSession) fleet
    /// finished solving. Streamed to the batch observer between variants —
    /// the progress hook for long Monte-Carlo runs — and aggregated in
    /// [`BatchReport`](crate::BatchReport).
    VariantSolved {
        /// Zero-based index of the variant in the fleet.
        variant: usize,
        /// Interpolation points the variant's solve spent.
        total_points: usize,
        /// Sampling points that reused a recorded pivot order during the
        /// variant's solve.
        refactor_hits: u64,
    },
    /// Sampling points inside one batch were rescued by the
    /// singular-recovery ladder instead of failing: a prescribed-order
    /// replay reported a singular pivot and a deeper rung (fresh
    /// value-aware Markowitz, or a recompile under the alternate ordering)
    /// factored the point. Fires right after the batch's
    /// [`Diagnostic::SamplingBatched`], only when any recovery happened —
    /// a warning, because repeated rescues mean the plan's recorded order
    /// is a poor fit for the variant's values.
    SolveRecovered {
        /// Points recovered by a fresh Markowitz factorization (rung 1).
        fresh: u64,
        /// Points recovered by the alternate-ordering recompile (rung 2).
        reordered: u64,
    },
}

impl Diagnostic {
    /// Severity classification: progress events are [`Severity::Info`],
    /// anything that signals degraded trust is [`Severity::Warning`].
    pub fn severity(&self) -> Severity {
        match self {
            Diagnostic::WindowOpened { .. }
            | Diagnostic::GapRepaired { .. }
            | Diagnostic::SamplingBatched { .. }
            | Diagnostic::TransientStepped { .. }
            | Diagnostic::OrderingSelected { .. }
            | Diagnostic::VariantSolved { .. } => Severity::Info,
            Diagnostic::CoefficientsDeclaredZero { .. }
            | Diagnostic::CrossCheckMismatch { .. }
            | Diagnostic::AllSamplesZero { .. }
            | Diagnostic::SolveRecovered { .. } => Severity::Warning,
        }
    }

    /// The polynomial this event concerns (`None` for events that are not
    /// tied to one polynomial, like [`Diagnostic::SamplingBatched`]).
    pub fn poly_kind(&self) -> Option<PolyKind> {
        match self {
            Diagnostic::WindowOpened { kind, .. }
            | Diagnostic::CoefficientsDeclaredZero { kind, .. }
            | Diagnostic::GapRepaired { kind, .. }
            | Diagnostic::CrossCheckMismatch { kind, .. }
            | Diagnostic::AllSamplesZero { kind } => Some(*kind),
            Diagnostic::SamplingBatched { .. }
            | Diagnostic::TransientStepped { .. }
            | Diagnostic::OrderingSelected { .. }
            | Diagnostic::VariantSolved { .. }
            | Diagnostic::SolveRecovered { .. } => None,
        }
    }
}

fn kind_name(kind: PolyKind) -> &'static str {
    match kind {
        PolyKind::Numerator => "numerator",
        PolyKind::Denominator => "denominator",
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::WindowOpened { kind, scale, points, region, reduced } => write!(
                f,
                "{}: window at f = {:.3e}, g = {:.3e} ({points} pts{}) valid over {:?}",
                kind_name(*kind),
                scale.f,
                scale.g,
                if *reduced { ", reduced" } else { "" },
                region,
            ),
            Diagnostic::CoefficientsDeclaredZero { kind, lo, hi } => write!(
                f,
                "{}: coefficients {lo}..={hi} declared zero after adaptive stall",
                kind_name(*kind)
            ),
            Diagnostic::GapRepaired { kind, lo, hi } => {
                write!(f, "{}: window gap {lo}..={hi} repaired by bisection", kind_name(*kind))
            }
            Diagnostic::CrossCheckMismatch { kind, index, rel_err } => write!(
                f,
                "{}: coefficient {index} disagrees between windows (rel {rel_err:.2e})",
                kind_name(*kind)
            ),
            Diagnostic::AllSamplesZero { kind } => {
                write!(f, "{}: all samples are exactly zero", kind_name(*kind))
            }
            Diagnostic::SamplingBatched {
                points,
                threads,
                refactor_hits,
                compiled_hits,
                mirrored,
            } => {
                write!(
                    f,
                    "sampled {points} points on {threads} thread{} \
                     ({refactor_hits} pivot-order reuses, {compiled_hits} compiled, \
                     {mirrored} mirrored)",
                    if *threads == 1 { "" } else { "s" },
                )
            }
            Diagnostic::TransientStepped { steps, refactor_hits, compiled_hits } => write!(
                f,
                "transient: {steps} steps ({refactor_hits} numeric factorization{}, \
                 {compiled_hits} compiled solves)",
                if *refactor_hits == 1 { "" } else { "s" },
            ),
            Diagnostic::OrderingSelected { dim, markowitz_fill, amd_fill, amd } => {
                let name = if *amd { "amd" } else { "markowitz" };
                write!(f, "ordering for dim {dim}: {name} (fill markowitz ")?;
                match markowitz_fill {
                    Some(m) => write!(f, "{m}")?,
                    None => write!(f, "–")?,
                }
                write!(f, ", amd ")?;
                match amd_fill {
                    Some(a) => write!(f, "{a}")?,
                    None => write!(f, "–")?,
                }
                write!(f, ")")
            }
            Diagnostic::VariantSolved { variant, total_points, refactor_hits } => write!(
                f,
                "variant {variant} solved: {total_points} points \
                 ({refactor_hits} pivot-order reuses)"
            ),
            Diagnostic::SolveRecovered { fresh, reordered } => write!(
                f,
                "recovered {} points from dead pivot replays \
                 ({fresh} by fresh factorization, {reordered} by reordering)",
                fresh + reordered
            ),
        }
    }
}

/// Receives [`Diagnostic`] events while a solve runs.
///
/// Implementations must be cheap: events fire from inside the adaptive
/// loop. The provided implementations are [`NullObserver`] (discard) and
/// [`CollectObserver`] (record everything).
pub trait Observer {
    /// Called once per event, in execution order.
    fn on_diagnostic(&mut self, diagnostic: &Diagnostic);
}

/// Discards every event — the default when no observer is attached.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_diagnostic(&mut self, _diagnostic: &Diagnostic) {}
}

/// Records every event in order; the standard test/audit observer.
#[derive(Clone, Debug, Default)]
pub struct CollectObserver {
    /// Everything received so far, in execution order.
    pub events: Vec<Diagnostic>,
}

impl CollectObserver {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        CollectObserver::default()
    }

    /// Events of [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.events.iter().filter(|d| d.severity() == Severity::Warning)
    }

    /// Number of events matching a predicate.
    pub fn count_where(&self, pred: impl Fn(&Diagnostic) -> bool) -> usize {
        self.events.iter().filter(|d| pred(d)).count()
    }
}

impl Observer for CollectObserver {
    fn on_diagnostic(&mut self, diagnostic: &Diagnostic) {
        self.events.push(diagnostic.clone());
    }
}

/// Every closure `FnMut(&Diagnostic)` is an observer, so ad-hoc hooks need
/// no named type: `session.observer(&mut |d: &Diagnostic| eprintln!("{d}"))`.
impl<F: FnMut(&Diagnostic)> Observer for F {
    fn on_diagnostic(&mut self, diagnostic: &Diagnostic) {
        self(diagnostic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Diagnostic> {
        vec![
            Diagnostic::WindowOpened {
                kind: PolyKind::Denominator,
                scale: Scale::new(1e9, 1e3),
                points: 41,
                region: Some((0, 5)),
                reduced: false,
            },
            Diagnostic::CoefficientsDeclaredZero { kind: PolyKind::Denominator, lo: 6, hi: 9 },
            Diagnostic::GapRepaired { kind: PolyKind::Numerator, lo: 2, hi: 3 },
            Diagnostic::CrossCheckMismatch { kind: PolyKind::Denominator, index: 4, rel_err: 1e-3 },
            Diagnostic::AllSamplesZero { kind: PolyKind::Numerator },
            Diagnostic::SamplingBatched {
                points: 41,
                threads: 4,
                refactor_hits: 20,
                compiled_hits: 20,
                mirrored: 20,
            },
            Diagnostic::TransientStepped { steps: 600, refactor_hits: 1, compiled_hits: 601 },
            Diagnostic::OrderingSelected {
                dim: 4096,
                markowitz_fill: Some(250_000),
                amd_fill: Some(40_000),
                amd: true,
            },
            Diagnostic::VariantSolved { variant: 7, total_points: 96, refactor_hits: 90 },
            Diagnostic::SolveRecovered { fresh: 3, reordered: 1 },
        ]
    }

    #[test]
    fn severity_split() {
        let events = sample_events();
        assert_eq!(events[0].severity(), Severity::Info);
        assert_eq!(events[1].severity(), Severity::Warning);
        assert_eq!(events[2].severity(), Severity::Info);
        assert_eq!(events[3].severity(), Severity::Warning);
        assert_eq!(events[4].severity(), Severity::Warning);
        assert_eq!(events[5].severity(), Severity::Info);
        assert_eq!(events[6].severity(), Severity::Info);
        assert_eq!(events[7].severity(), Severity::Info);
        assert_eq!(events[8].severity(), Severity::Info);
        assert_eq!(events[9].severity(), Severity::Warning);
    }

    #[test]
    fn collector_records_in_order() {
        let mut obs = CollectObserver::new();
        for e in sample_events() {
            obs.on_diagnostic(&e);
        }
        assert_eq!(obs.events, sample_events());
        assert_eq!(obs.warnings().count(), 4);
        assert_eq!(obs.count_where(|d| d.poly_kind() == Some(PolyKind::Numerator)), 2);
        assert_eq!(obs.count_where(|d| d.poly_kind().is_none()), 5);
    }

    #[test]
    fn closures_are_observers() {
        let mut seen = 0usize;
        {
            let mut hook = |_d: &Diagnostic| seen += 1;
            for e in sample_events() {
                hook.on_diagnostic(&e);
            }
        }
        assert_eq!(seen, 10);
    }

    #[test]
    fn display_is_informative() {
        for e in sample_events() {
            let s = e.to_string();
            match e.poly_kind() {
                Some(_) => {
                    assert!(s.contains("numerator") || s.contains("denominator"), "{s}")
                }
                None => assert!(
                    s.contains("points")
                        || s.contains("thread")
                        || s.contains("steps")
                        || s.contains("ordering"),
                    "{s}"
                ),
            }
        }
    }
}
