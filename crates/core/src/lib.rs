//! The paper's contribution: **adaptive-scaling polynomial interpolation**
//! for numerical reference generation.
//!
//! Given a linear(ized) circuit and a transfer-function specification, this
//! crate recovers the exact numerator and denominator coefficients of
//!
//! ```text
//! H(s) = N(s)/D(s) = Σ fᵢ·sⁱ / Σ gⱼ·sʲ
//! ```
//!
//! by sampling `D(s_k) = det(Y_MNA)` and `N(s_k) = H(s_k)·D(s_k)` on the
//! unit circle and inverting the DFT (eq. (5)) — with the crucial twist that
//! a *single* interpolation can only resolve ~13 decades of coefficient
//! spread before f64 round-off drowns the rest (§2.2, Table 1a). The
//! [`AdaptiveInterpolator`] therefore performs a *sequence* of
//! interpolations whose frequency/conductance scale factors are derived
//! from each previous result (eqs. (12)–(16)), so the valid windows tile
//! the whole coefficient range with minimal overlap, and shrinks later
//! interpolations to only the unknown coefficients (eq. (17)).
//!
//! Modules:
//!
//! * [`config`] — tuning knobs (`σ` significant digits, the `1e-13` noise
//!   floor, the `r` tuning factor, reduction on/off).
//! * [`window`] — one interpolation: sampling, exponent alignment, IDFT,
//!   validity window (eq. (12)).
//! * [`scaling`] — initial heuristics and scale-factor updates
//!   (eqs. (13)–(16)).
//! * [`adaptive`] — the driver; produces a [`NetworkFunction`].
//! * [`baseline`] — the conventional methods the paper compares against:
//!   plain unit-circle interpolation (Table 1a), one static scaling
//!   (Table 1b), and the naive multi-scale grid of §3.1.
//! * [`validate`] — Bode comparison against the independent AC simulator
//!   (Fig. 2).
//!
//! # Example
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_core::{AdaptiveInterpolator, RefgenConfig};
//! use refgen_mna::TransferSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = rc_ladder(8, 1e3, 1e-9);
//! let spec = TransferSpec::voltage_gain("VIN", "out");
//! let nf = AdaptiveInterpolator::new(RefgenConfig::default())
//!     .network_function(&circuit, &spec)?;
//! assert_eq!(nf.denominator.degree(), Some(8));
//! assert_eq!(nf.numerator.degree(), Some(0));
//! # Ok(())
//! # }
//! ```

pub mod adaptive;
pub mod baseline;
pub mod config;
pub mod error;
pub mod scaling;
pub mod timedomain;
pub mod validate;
pub mod window;

pub use adaptive::{AdaptiveInterpolator, NetworkFunction, PolyKind, PolyReport, RunReport};
pub use config::RefgenConfig;
pub use error::RefgenError;
pub use timedomain::{PartialFractions, TimeDomainError};
pub use validate::{validate_against_ac, ValidationReport};
pub use window::Window;

pub use scaling::{initial_scale, ScalePolicy};
