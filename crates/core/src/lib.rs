//! The paper's contribution: **adaptive-scaling polynomial interpolation**
//! for numerical reference generation — exposed behind one [`Solver`]
//! interface and driven through the [`Session`] builder.
//!
//! Given a linear(ized) circuit and a transfer-function specification, this
//! crate recovers the exact numerator and denominator coefficients of
//!
//! ```text
//! H(s) = N(s)/D(s) = Σ fᵢ·sⁱ / Σ gⱼ·sʲ
//! ```
//!
//! by sampling `D(s_k) = det(Y_MNA)` and `N(s_k) = H(s_k)·D(s_k)` on the
//! unit circle and inverting the DFT (eq. (5)) — with the crucial twist that
//! a *single* interpolation can only resolve ~13 decades of coefficient
//! spread before f64 round-off drowns the rest (§2.2, Table 1a). The
//! [`AdaptiveInterpolator`] therefore performs a *sequence* of
//! interpolations whose frequency/conductance scale factors are derived
//! from each previous result (eqs. (12)–(16)), so the valid windows tile
//! the whole coefficient range with minimal overlap, and shrinks later
//! interpolations to only the unknown coefficients (eq. (17)).
//!
//! # The API at a glance
//!
//! * [`Session`] — the front door: owns circuit, spec, config, solver and
//!   observer, assembled by method chaining, finished by
//!   [`Session::solve`].
//! * [`Solver`] / [`Solution`] — the seam every method implements: the
//!   adaptive algorithm and the three conventional baselines
//!   ([`baseline::UnitCircleSolver`], [`baseline::StaticScalingSolver`],
//!   [`baseline::MultiScaleGridSolver`]) are interchangeable
//!   `&dyn Solver`s, which is what lets SBG/SDG consumers and the
//!   experiment runners swap methods freely.
//! * [`Observer`] / [`Diagnostic`] — typed progress events (window opened,
//!   coefficients declared zero, gap repaired, cross-check mismatch…)
//!   streamed during the solve and recorded in every [`Solution`].
//! * [`RefgenConfig`] — tuning knobs, built by chaining:
//!   `RefgenConfig::builder().verify(false).build()`.
//!
//! # The plan/execute sampling engine
//!
//! Every window's unit-circle sampling — the algorithm's hot path — runs
//! on a plan/execute engine: a [`SweepPlan`](refgen_mna::SweepPlan) is
//! compiled once per window (sparsity pattern, RHS template, recorded
//! pivot order), then executed over all points with reused per-worker
//! scratch state: numeric refactorization instead of a pivot search per
//! point, and zero steady-state allocation. The
//! `RefgenConfig::builder().threads(n)` knob fans the points out over `n`
//! scoped worker threads (`0` = available parallelism; default `1`) via
//! the dependency-free `refgen_exec` executor, with **bit-identical
//! output at every thread count** — results are collected in index order
//! and each point is a pure function of the plan. Per-window cost and
//! pivot-order reuse are reported as [`Diagnostic::SamplingBatched`]
//! events and accumulated in [`PolyReport::refactor_hits`].
//!
//! Modules:
//!
//! * [`config`] — tuning knobs (`σ` significant digits, the `1e-13` noise
//!   floor, the `r` tuning factor, reduction on/off) + builder.
//! * [`window`] — one interpolation: sampling, exponent alignment, IDFT,
//!   validity window (eq. (12)).
//! * [`scaling`] — initial heuristics and scale-factor updates
//!   (eqs. (13)–(16)).
//! * [`adaptive`] — the paper's driver; produces a [`NetworkFunction`].
//! * [`baseline`] — the conventional methods the paper compares against,
//!   as raw window inspectors and as [`Solver`]s.
//! * [`diagnostic`] — the typed event stream and observer trait.
//! * [`solver`] — the [`Solver`]/[`Solution`] abstraction.
//! * [`session`] — the [`Session`] builder.
//! * [`validate`] — Bode comparison against the independent AC simulator
//!   (Fig. 2).
//!
//! # Example
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_core::Session;
//! use refgen_mna::TransferSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = rc_ladder(8, 1e3, 1e-9);
//! let solution = Session::for_circuit(&circuit)
//!     .spec(TransferSpec::voltage_gain("VIN", "out"))
//!     .solve()?;
//! assert_eq!(solution.network.denominator.degree(), Some(8));
//! assert_eq!(solution.network.numerator.degree(), Some(0));
//! # Ok(())
//! # }
//! ```
//!
//! Attaching an observer and swapping the method:
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_core::baseline::StaticScalingSolver;
//! use refgen_core::{CollectObserver, RefgenConfig, Session};
//! use refgen_mna::TransferSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = rc_ladder(8, 1e3, 1e-9);
//! let mut observer = CollectObserver::new();
//! let solution = Session::for_circuit(&circuit)
//!     .spec(TransferSpec::voltage_gain("VIN", "out"))
//!     .solver(StaticScalingSolver::heuristic(RefgenConfig::default()))
//!     .observer(&mut observer)
//!     .solve()?;
//! assert_eq!(solution.method, "static-scaling");
//! assert!(!observer.events.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! # Failure semantics
//!
//! Failures split into two scopes, and the split decides what a fleet
//! can contain:
//!
//! * **Per-point** — one evaluation point of one variant's sampling
//!   died. The sparse engine first climbs the *singular-recovery
//!   ladder*: a dead pivot-order replay is retried with a fresh
//!   value-aware Markowitz factorization (rung 1), then with a
//!   recompiled program under the alternate ordering family —
//!   AMD ↔ Markowitz (rung 2). Rescued points are exact solves (no
//!   accuracy loss), counted in
//!   [`SweepStats`](refgen_mna::SweepStats)`::{recovered_fresh,
//!   recovered_reordered}` and surfaced as
//!   [`Diagnostic::SolveRecovered`]. Only an exhausted ladder becomes
//!   an error: [`MnaError`](refgen_mna::MnaError)`::Unrecoverable`,
//!   carrying the point and the rung count.
//! * **Per-session** — the request itself is unanswerable:
//!   [`RefgenError::SpecMissing`], [`RefgenError::EmptyFleet`],
//!   [`RefgenError::EmptyGrid`], [`RefgenError::Unscalable`],
//!   [`RefgenError::NoReactiveElements`], or adaptive-loop exhaustion
//!   ([`RefgenError::DidNotConverge`] / [`RefgenError::Gap`]). These
//!   are raised before or instead of a result, never contained.
//!
//! Fleet solves choose how per-variant failures propagate via
//! [`RefgenConfig::fault_policy`]: under [`FaultPolicy::FailFast`]
//! (default) the first failing variant aborts [`BatchSession::solve_all`]
//! with its error; under [`FaultPolicy::Contain`] each failure — an
//! exhausted ladder, any other typed solve error, or a panicking solve
//! job (quarantined as [`RefgenError::VariantPanicked`]) — becomes a
//! [`VariantOutcome::Failed`] entry while every other variant proceeds,
//! bit-identical to a fleet that never contained the failures.
//!
//! All of it is testable deterministically: the
//! [`refgen_mna::faults`] tier injects seeded zero pivots, NaN stamps,
//! GMRES stagnation, and scripted panics, gated so an unarmed process
//! pays one atomic load per query.

pub mod adaptive;
pub mod baseline;
mod batch;
pub mod config;
pub mod diagnostic;
pub mod error;
pub mod fleet;
pub mod runtime;
pub mod scaling;
pub mod session;
pub mod solver;
pub mod timedomain;
pub mod transient;
pub mod validate;
pub mod window;

pub use adaptive::{AdaptiveInterpolator, NetworkFunction, PolyKind, PolyReport, RunReport};
pub use config::{ExecutorKind, FaultPolicy, OrderingMode, RefgenConfig, RefgenConfigBuilder};
pub use diagnostic::{CollectObserver, Diagnostic, NullObserver, Observer, Severity};
pub use error::RefgenError;
pub use fleet::{BatchReport, BatchRun, BatchSession, CoeffStats, VariantOutcome};
pub use refgen_mna::faults;
pub use runtime::SamplingRuntime;
pub use session::Session;
pub use solver::{Solution, Solver};
pub use timedomain::{PartialFractions, TimeDomainError};
pub use transient::{RichardsonCheck, StepMetrics, TransientAnalysis, TransientResult};
pub use validate::{ac_sweep_with_config, validate_against_ac, ValidationReport};
pub use window::Window;

pub use scaling::{initial_scale, ScalePolicy};
