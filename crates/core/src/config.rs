//! Configuration for the adaptive interpolation algorithm.

pub use refgen_exec::ExecutorKind;
pub use refgen_mna::OrderingMode;

/// How a fleet session ([`BatchSession`](crate::BatchSession)) treats a
/// failing variant.
///
/// `FailFast` preserves the historical semantics: the first per-variant
/// error aborts the whole run (and a panicking variant unwinds it).
/// `Contain` turns each failure into a typed per-variant
/// [`VariantOutcome::Failed`](crate::VariantOutcome::Failed) — including
/// quarantined job panics — while every surviving variant's solution,
/// diagnostics, and accounting stay **bit-identical** to a fault-free run
/// of the surviving circuits alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// The first failing variant aborts the fleet (historical behavior).
    #[default]
    FailFast,
    /// Failures are contained per variant; survivors are unaffected.
    Contain,
}

/// Tuning knobs for [`AdaptiveInterpolator`](crate::AdaptiveInterpolator).
///
/// The defaults mirror the paper: coefficients are accepted with `σ = 6`
/// significant digits against a machine noise floor of
/// `10^{-13}·max_i|p'_i|` (§2.2/§3.2), the tuning factor `r` of eq. (14) is
/// zero, and the problem-size reduction of eq. (17) is on.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`RefgenConfig::default`] or the [builder](RefgenConfig::builder) —
/// `RefgenConfig::builder().verify(false).reduce(false).build()` — so new
/// knobs can be added without breaking downstream code.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub struct RefgenConfig {
    /// Desired significant digits `σ` in accepted coefficients.
    pub sig_digits: u32,
    /// Decades of dynamic range assumed lost to round-off in one
    /// interpolation (the paper's `13` in `10^{-13}·max|pᵢ|`).
    pub noise_decades: f64,
    /// The paper's tuning factor `r` in eqs. (14)–(15): extra decades of
    /// window overlap margin when stepping the scale factors.
    pub tuning_r: f64,
    /// Hard cap on the number of interpolations per polynomial.
    pub max_interpolations: usize,
    /// Apply the problem-size reduction of eq. (17) (fewer interpolation
    /// points once head/tail coefficients are known).
    pub reduce: bool,
    /// How many escalating re-tilts to try when an adaptive step yields no
    /// new coefficients, before declaring the remaining ones zero.
    pub stall_retries: u32,
    /// How many bisection attempts (eq. (16)) to repair a window gap.
    pub gap_retries: u32,
    /// Cross-verify every window by re-interpolating at a slightly
    /// perturbed scale and accepting only coefficients that agree — the
    /// paper's §3.1 "only coefficients equal in both interpolations are
    /// valid" criterion, applied adaptively. Costs one extra interpolation
    /// per window; turn off to reproduce the paper's exact
    /// interpolation-count/CPU-time structure (Tables 2–3).
    pub verify: bool,
    /// Cap on the scale-step tilt, in decades per coefficient index.
    /// Beyond ~8 the element-value imbalance of the scaled matrix starts
    /// eroding the LU determinant itself (the paper's §3.2 warning about
    /// too-large individual scale factors).
    pub max_step_decades_per_index: f64,
    /// Worker threads for batched unit-circle sampling: each window's
    /// points are independent numeric refactorizations, executed by
    /// `refgen_exec` with deterministic, index-ordered collection — solver
    /// output is **bit-identical at any thread count**. `0` means "use the
    /// available hardware parallelism"; the default is `1`
    /// (single-threaded, matching the original engine), unless the
    /// `REFGEN_TEST_THREADS` environment variable overrides it — the hook
    /// CI uses to run the whole test suite under a parallel sampling
    /// configuration without touching every test.
    pub threads: usize,
    /// How sampling batches obtain their worker threads:
    /// [`ExecutorKind::Scoped`] spawns scoped threads per batch (zero
    /// standing cost), [`ExecutorKind::Pool`] spawns one persistent
    /// `refgen_exec::WorkerPool` per solve (or per batch session) and
    /// reuses it across every window and polynomial — amortizing the
    /// ~100 µs spawn/join per batch that dominates reduced 6-point
    /// windows. Output is **bit-identical** under either kind; only
    /// wall-clock time changes. Default [`ExecutorKind::Scoped`], unless
    /// the `REFGEN_TEST_EXECUTOR=pool` environment variable overrides it
    /// (the CI hook that re-runs the whole suite on the pool executor).
    pub executor: ExecutorKind,
    /// Exploit conjugate symmetry in window sampling: the MNA pattern's
    /// `K₀`/`K₁` and RHS are real for every supported element, so
    /// `D(s̄) = conj(D(s))` **exactly**, and IEEE complex arithmetic is
    /// conjugate-equivariant — the sampler solves only the closed upper
    /// half of each window's conjugate-paired σ set and mirrors the rest
    /// **bit-identically**, halving solves per window. Output is identical
    /// either way; only wall-clock time changes. Default `true`, unless
    /// the `REFGEN_TEST_CONJ=off` environment variable overrides it — the
    /// CI hook that re-runs the whole suite on the full (un-mirrored)
    /// sweep for differential testing.
    pub conjugate_mirror: bool,
    /// Lane width for batched window sampling: how many σ points one
    /// instruction-stream traversal of the compiled symbolic kernel drives
    /// at once (`refgen_sparse`'s slot-major
    /// `BatchScratch` lanes). `1` runs the
    /// classic one-point-at-a-time path. Batching is orthogonal to
    /// [`RefgenConfig::threads`] — lanes amortize instruction fetch inside
    /// one worker, threads fan chunks across workers — and per live lane
    /// the batched kernel performs the exact scalar operation sequence of
    /// the one-lane path, so output is **bit-identical at any lane
    /// width**. Default `32`, unless the `REFGEN_TEST_LANES` environment
    /// variable overrides it — the CI hook that re-runs the whole suite at
    /// a non-default width.
    pub lane_width: usize,
    /// Pivot-ordering policy for the sampling plans:
    /// [`OrderingMode::Auto`] lets the sweep engine keep the numeric
    /// Markowitz probe order unless its realized fill crosses the
    /// mesh-scale threshold, at which point a validated
    /// approximate-minimum-degree order takes over;
    /// [`OrderingMode::Markowitz`]/[`OrderingMode::Amd`] force one side.
    /// The selection is symbolic-phase only — every ordering feeds the
    /// same compiled kernel, and per-point output is bit-identical for a
    /// fixed selection. Default [`OrderingMode::Auto`], unless the
    /// `REFGEN_TEST_ORDERING` environment variable (`amd` / `markowitz`)
    /// overrides it — the CI hook that re-runs the whole suite under a
    /// forced ordering.
    pub ordering: OrderingMode,
    /// Permit iterative (anchored-GMRES) refinement paths where an
    /// analysis exposes them (dense AC mesh sweeps). The interpolation
    /// engine itself always samples through direct factorization — its
    /// determinant extraction has no iterative equivalent — so this knob
    /// only affects auxiliary sweep front ends. Default `false`.
    pub iterative: bool,
    /// How fleet sessions treat failing variants: abort on the first error
    /// ([`FaultPolicy::FailFast`], the historical default) or contain each
    /// failure as a typed per-variant outcome while survivors complete
    /// bit-identically ([`FaultPolicy::Contain`]). Single-circuit solves
    /// ignore this knob.
    pub fault_policy: FaultPolicy,
}

/// Default for [`RefgenConfig::threads`]: `1`, overridable by the
/// `REFGEN_TEST_THREADS` environment variable (read once per process).
pub fn default_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("REFGEN_TEST_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
    })
}

/// Default for [`RefgenConfig::executor`]: [`ExecutorKind::Scoped`],
/// overridable by setting the `REFGEN_TEST_EXECUTOR` environment variable
/// to `pool` (read once per process).
pub fn default_executor() -> ExecutorKind {
    static DEFAULT: std::sync::OnceLock<ExecutorKind> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("REFGEN_TEST_EXECUTOR") {
        Ok(v) if v.eq_ignore_ascii_case("pool") => ExecutorKind::Pool,
        _ => ExecutorKind::Scoped,
    })
}

/// Default for [`RefgenConfig::conjugate_mirror`]: `true`, overridable by
/// setting the `REFGEN_TEST_CONJ` environment variable to `off`, `0`, or
/// `false` (read once per process) — the CI hook that forces the full
/// un-mirrored sweep for differential testing.
pub fn default_conjugate_mirror() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("REFGEN_TEST_CONJ") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    })
}

/// Default for [`RefgenConfig::lane_width`]: `32`, overridable by the
/// `REFGEN_TEST_LANES` environment variable (read once per process) — the
/// CI hook that re-runs the whole suite at a non-default lane width.
///
/// `32` measures fastest per lane on the µA741 fleet shape: per-step
/// fixed costs (pivot staging, determinant bookkeeping, dispatch) keep
/// amortizing well past 8 lanes, while the slot-major working set —
/// `slots × width` complex values per worker — still streams fine at
/// µA741 size (~100 KiB). Shrink it for much larger patterns.
pub fn default_lane_width() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("REFGEN_TEST_LANES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(32)
    })
}

/// Default for [`RefgenConfig::ordering`]: [`OrderingMode::Auto`],
/// overridable by the `REFGEN_TEST_ORDERING` environment variable (`amd`
/// or `markowitz`, read once per process) — the CI hook that re-runs the
/// whole suite under a forced pivot-ordering policy.
pub fn default_ordering() -> OrderingMode {
    OrderingMode::env_default()
}

impl Default for RefgenConfig {
    fn default() -> Self {
        RefgenConfig {
            sig_digits: 6,
            noise_decades: 13.0,
            tuning_r: 0.0,
            max_interpolations: 64,
            reduce: true,
            stall_retries: 3,
            gap_retries: 3,
            verify: true,
            max_step_decades_per_index: 8.0,
            threads: default_threads(),
            executor: default_executor(),
            conjugate_mirror: default_conjugate_mirror(),
            lane_width: default_lane_width(),
            ordering: default_ordering(),
            iterative: false,
            fault_policy: FaultPolicy::default(),
        }
    }
}

impl RefgenConfig {
    /// Starts a [`RefgenConfigBuilder`] from the paper defaults.
    pub fn builder() -> RefgenConfigBuilder {
        RefgenConfigBuilder { config: RefgenConfig::default() }
    }

    /// Validity threshold exponent relative to the window maximum:
    /// coefficients with `|p'_i| < 10^{−(noise_decades − sig_digits)}·max`
    /// are rejected (paper eq. (12) with the `10^{−13+6}` criterion).
    pub fn validity_decades(&self) -> f64 {
        self.noise_decades - self.sig_digits as f64
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `sig_digits` leaves no usable window
    /// (`sig_digits ≥ noise_decades`) or limits are zero.
    pub fn assert_valid(&self) {
        assert!(
            (self.sig_digits as f64) < self.noise_decades,
            "sig_digits {} must be below noise_decades {}",
            self.sig_digits,
            self.noise_decades
        );
        assert!(self.max_interpolations > 0, "max_interpolations must be positive");
        assert!(self.tuning_r >= 0.0, "tuning_r must be non-negative");
        assert!(self.lane_width >= 1, "lane_width must be at least 1");
    }
}

/// Chainable constructor for [`RefgenConfig`], starting from the paper
/// defaults. One setter per knob; [`RefgenConfigBuilder::build`] validates.
///
/// ```
/// use refgen_core::RefgenConfig;
///
/// let cfg = RefgenConfig::builder().verify(false).reduce(false).build();
/// assert!(!cfg.verify && !cfg.reduce);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RefgenConfigBuilder {
    config: RefgenConfig,
}

impl RefgenConfigBuilder {
    /// Desired significant digits `σ` in accepted coefficients.
    #[must_use]
    pub fn sig_digits(mut self, sig_digits: u32) -> Self {
        self.config.sig_digits = sig_digits;
        self
    }

    /// Decades of dynamic range assumed lost to round-off per window.
    #[must_use]
    pub fn noise_decades(mut self, noise_decades: f64) -> Self {
        self.config.noise_decades = noise_decades;
        self
    }

    /// The paper's tuning factor `r` of eqs. (14)–(15).
    #[must_use]
    pub fn tuning_r(mut self, tuning_r: f64) -> Self {
        self.config.tuning_r = tuning_r;
        self
    }

    /// Hard cap on interpolations per polynomial.
    #[must_use]
    pub fn max_interpolations(mut self, max_interpolations: usize) -> Self {
        self.config.max_interpolations = max_interpolations;
        self
    }

    /// Apply the problem-size reduction of eq. (17).
    #[must_use]
    pub fn reduce(mut self, reduce: bool) -> Self {
        self.config.reduce = reduce;
        self
    }

    /// Escalating re-tilts to try before declaring coefficients zero.
    #[must_use]
    pub fn stall_retries(mut self, stall_retries: u32) -> Self {
        self.config.stall_retries = stall_retries;
        self
    }

    /// Bisection attempts (eq. (16)) to repair a window gap.
    #[must_use]
    pub fn gap_retries(mut self, gap_retries: u32) -> Self {
        self.config.gap_retries = gap_retries;
        self
    }

    /// Cross-verify every window at a perturbed scale.
    #[must_use]
    pub fn verify(mut self, verify: bool) -> Self {
        self.config.verify = verify;
        self
    }

    /// Cap on the scale-step tilt, in decades per coefficient index.
    #[must_use]
    pub fn max_step_decades_per_index(mut self, decades: f64) -> Self {
        self.config.max_step_decades_per_index = decades;
        self
    }

    /// Worker threads for batched window sampling (`0` = available
    /// hardware parallelism). Output is bit-identical at any value; only
    /// wall-clock time changes.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Executor strategy for sampling batches (scoped per-batch spawns or
    /// a persistent worker pool). Output is bit-identical under either.
    #[must_use]
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.config.executor = executor;
        self
    }

    /// Solve only the closed upper half of each window's conjugate-paired
    /// σ set and mirror the rest (real-pattern systems only; output is
    /// bit-identical either way). `false` forces the full sweep.
    #[must_use]
    pub fn conjugate_mirror(mut self, conjugate_mirror: bool) -> Self {
        self.config.conjugate_mirror = conjugate_mirror;
        self
    }

    /// Lane width for batched window sampling (how many σ points one
    /// compiled-kernel traversal drives at once; `1` = classic per-point
    /// path). Output is bit-identical at any width.
    #[must_use]
    pub fn lane_width(mut self, lane_width: usize) -> Self {
        self.config.lane_width = lane_width;
        self
    }

    /// Pivot-ordering policy for sampling plans (auto-select, or force
    /// Markowitz / approximate minimum degree). Symbolic phase only;
    /// output is bit-identical for a fixed selection.
    #[must_use]
    pub fn ordering(mut self, ordering: OrderingMode) -> Self {
        self.config.ordering = ordering;
        self
    }

    /// Permit iterative (anchored-GMRES) paths in auxiliary sweeps.
    #[must_use]
    pub fn iterative(mut self, iterative: bool) -> Self {
        self.config.iterative = iterative;
        self
    }

    /// How fleet sessions treat failing variants (abort on first error, or
    /// contain each failure per variant).
    #[must_use]
    pub fn fault_policy(mut self, fault_policy: FaultPolicy) -> Self {
        self.config.fault_policy = fault_policy;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics when the knobs are inconsistent
    /// (see [`RefgenConfig::assert_valid`]).
    pub fn build(self) -> RefgenConfig {
        self.config.assert_valid();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = RefgenConfig::builder()
            .sig_digits(5)
            .noise_decades(12.0)
            .tuning_r(1.5)
            .max_interpolations(7)
            .reduce(false)
            .stall_retries(2)
            .gap_retries(1)
            .verify(false)
            .max_step_decades_per_index(6.0)
            .threads(4)
            .executor(ExecutorKind::Pool)
            .conjugate_mirror(false)
            .lane_width(4)
            .ordering(OrderingMode::Amd)
            .iterative(true)
            .fault_policy(FaultPolicy::Contain)
            .build();
        assert_eq!(cfg.ordering, OrderingMode::Amd);
        assert!(cfg.iterative);
        assert_eq!(cfg.fault_policy, FaultPolicy::Contain);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.executor, ExecutorKind::Pool);
        assert!(!cfg.conjugate_mirror);
        assert_eq!(cfg.lane_width, 4);
        assert_eq!(cfg.sig_digits, 5);
        assert_eq!(cfg.noise_decades, 12.0);
        assert_eq!(cfg.tuning_r, 1.5);
        assert_eq!(cfg.max_interpolations, 7);
        assert!(!cfg.reduce && !cfg.verify);
        assert_eq!(cfg.stall_retries, 2);
        assert_eq!(cfg.gap_retries, 1);
        assert_eq!(cfg.max_step_decades_per_index, 6.0);
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(RefgenConfig::builder().build(), RefgenConfig::default());
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn builder_rejects_impossible_digits() {
        RefgenConfig::builder().sig_digits(14).build();
    }

    #[test]
    fn default_matches_paper() {
        let c = RefgenConfig::default();
        assert_eq!(c.sig_digits, 6);
        assert_eq!(c.noise_decades, 13.0);
        assert_eq!(c.validity_decades(), 7.0);
        // Single-threaded scoped execution by default (seed behavior),
        // unless the CI environment hooks override it.
        assert_eq!(c.threads, default_threads());
        assert_eq!(c.executor, default_executor());
        assert_eq!(c.conjugate_mirror, default_conjugate_mirror());
        assert_eq!(c.lane_width, default_lane_width());
        assert_eq!(c.ordering, default_ordering());
        assert!(!c.iterative);
        assert_eq!(c.fault_policy, FaultPolicy::FailFast);
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn rejects_impossible_digits() {
        RefgenConfig { sig_digits: 14, ..RefgenConfig::default() }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "lane_width")]
    fn rejects_zero_lane_width() {
        RefgenConfig::builder().lane_width(0).build();
    }
}
