//! Transient analysis through the [`Session`] front door.
//!
//! The heavy lifting — companion-model stamping, the one-factorization
//! stepping contract — lives in [`refgen_mna::transient`]; this module is
//! the runner that turns a parsed `.TRAN` card into node waveforms:
//!
//! ```text
//!   TranCard ──► TransientAnalysis ──► TransientPlan (γ = 1/h or 2/h)
//!                      │                     │ step × N
//!                      │                     ▼
//!                      │               node waveforms ──► StepMetrics
//!                      │                     │
//!                      └── cross_check ──────┴──► RichardsonCheck
//!                          (re-run at h/2 through the *shared* program)
//! ```
//!
//! Two cross-checks close the loop with the paper's frequency-domain path:
//!
//! * the step-halving **Richardson** mode re-integrates at `h/2` — free of
//!   extra pivot searches because [`TransientPlan::with_dt`] shares the
//!   compiled program — and reports the observed deviation, an a-posteriori
//!   truncation-error estimate;
//! * the root `transient_oracle` tier drives the stepper against
//!   [`PartialFractions::step_response`](crate::PartialFractions), the
//!   closed form recovered by the symbolic interpolation engine.
//!
//! Each run emits one [`Diagnostic::TransientStepped`] through the observer
//! seam, carrying the same plan-reuse counters
//! ([`TransientStats`]) the sampling engine
//! reports via `SamplingBatched`.

use crate::diagnostic::{Diagnostic, NullObserver, Observer};
use crate::error::RefgenError;
use crate::session::Session;
use refgen_circuit::{Circuit, NodeId, TranCard};
use refgen_mna::{IntegrationMethod, MnaSystem, TransientPlan, TransientScratch, TransientStats};

/// A configured transient run: time axis, integration method, and the
/// optional Richardson cross-check. Build one from a parsed `.TRAN` card
/// (or via `From<TranCard>`) and hand it to [`Session::transient`].
#[derive(Clone, Debug)]
pub struct TransientAnalysis {
    card: TranCard,
    method: IntegrationMethod,
    cross_check: bool,
}

impl From<TranCard> for TransientAnalysis {
    fn from(card: TranCard) -> Self {
        TransientAnalysis::new(card)
    }
}

impl TransientAnalysis {
    /// A transient run over `card`'s time axis with the default
    /// trapezoidal rule and no cross-check.
    pub fn new(card: TranCard) -> Self {
        TransientAnalysis { card, method: IntegrationMethod::Trapezoidal, cross_check: false }
    }

    /// Selects the integration method (default
    /// [`IntegrationMethod::Trapezoidal`]).
    #[must_use]
    pub fn method(mut self, method: IntegrationMethod) -> Self {
        self.method = method;
        self
    }

    /// Enables the step-halving Richardson cross-check: the run is
    /// repeated at `Δt/2` through the **shared** compiled program and the
    /// largest deviation at the coarse time points is reported as a
    /// [`RichardsonCheck`] on the result.
    #[must_use]
    pub fn cross_check(mut self, cross_check: bool) -> Self {
        self.cross_check = cross_check;
        self
    }

    /// Runs the analysis on `circuit`, streaming a
    /// [`Diagnostic::TransientStepped`] to `observer` when done.
    ///
    /// # Errors
    ///
    /// [`RefgenError::Mna`] when the system cannot be assembled, the time
    /// step is invalid, or the companion matrix is singular.
    pub fn run(
        &self,
        circuit: &Circuit,
        observer: &mut dyn Observer,
    ) -> Result<TransientResult, RefgenError> {
        let sys = MnaSystem::new(circuit)?;
        let plan = TransientPlan::new(&sys, self.card.tstep, self.method)?;
        let times = self.card.times();
        // Non-ground nodes in MNA row order, by name.
        let rows: Vec<(String, usize)> = (1..circuit.node_count())
            .filter_map(|i| {
                let id = NodeId(i);
                sys.node_row(id).map(|row| (circuit.node_name(id).to_string(), row))
            })
            .collect();

        let (waves, stats) = integrate(&plan, &times, &rows)?;

        let cross_check = if self.cross_check {
            let dt_half = self.card.tstep * 0.5;
            let fine_plan = plan.with_dt(dt_half)?;
            let steps = times.len() - 1;
            let fine_times: Vec<f64> =
                (0..=2 * steps).map(|k| self.card.tstart + dt_half * k as f64).collect();
            let (fine, _) = integrate(&fine_plan, &fine_times, &rows)?;
            let mut max_abs_dev = 0.0f64;
            for (coarse_wave, fine_wave) in waves.iter().zip(&fine) {
                for (k, &v) in coarse_wave.iter().enumerate() {
                    max_abs_dev = max_abs_dev.max((v - fine_wave[2 * k]).abs());
                }
            }
            Some(RichardsonCheck { dt_half, max_abs_dev, order: self.method.order() })
        } else {
            None
        };

        observer.on_diagnostic(&Diagnostic::TransientStepped {
            steps: stats.steps,
            refactor_hits: stats.refactor_hits,
            compiled_hits: stats.compiled_hits,
        });

        Ok(TransientResult {
            times,
            names: rows.into_iter().map(|(n, _)| n).collect(),
            waves,
            stats,
            method: self.method,
            dt: self.card.tstep,
            cross_check,
        })
    }
}

/// Steps `plan` over `times`, recording the named node rows.
fn integrate(
    plan: &TransientPlan,
    times: &[f64],
    rows: &[(String, usize)],
) -> Result<(Vec<Vec<f64>>, TransientStats), RefgenError> {
    let mut state = plan.initial_state(times[0]);
    let mut scratch = TransientScratch::new();
    let mut waves = vec![Vec::with_capacity(times.len()); rows.len()];
    for (wave, (_, row)) in waves.iter_mut().zip(rows) {
        wave.push(state.solution()[*row].re);
    }
    for &t in &times[1..] {
        plan.step(t, &mut state, &mut scratch)?;
        for (wave, (_, row)) in waves.iter_mut().zip(rows) {
            wave.push(state.solution()[*row].re);
        }
    }
    Ok((waves, scratch.stats()))
}

/// The outcome of a step-halving Richardson cross-check.
#[derive(Clone, Copy, Debug)]
pub struct RichardsonCheck {
    /// The halved step size the verification run used.
    pub dt_half: f64,
    /// Largest absolute deviation between the two runs over every node and
    /// coarse time point.
    pub max_abs_dev: f64,
    /// The method's convergence order `p` (used by
    /// [`RichardsonCheck::error_estimate`]).
    pub order: u32,
}

impl RichardsonCheck {
    /// Richardson estimate of the coarse run's global truncation error:
    /// for an order-`p` method, `err ≈ dev / (1 − 2^{−p})`.
    pub fn error_estimate(&self) -> f64 {
        self.max_abs_dev / (1.0 - 0.5f64.powi(self.order as i32))
    }
}

/// Scalar descriptors of one node's step-like waveform.
#[derive(Clone, Copy, Debug)]
pub struct StepMetrics {
    /// The last sample (the settled value for a stable run).
    pub final_value: f64,
    /// The largest sample.
    pub peak: f64,
    /// `max(0, peak − final)/|final|` in percent — the upward excursion
    /// beyond the settled value. `None` when the ratio is undefined: a
    /// zero final value (a high-pass pulse response settles at 0, where
    /// any excursion is an infinite percentage) or a non-finite final
    /// value or peak. Never NaN.
    pub overshoot_pct: Option<f64>,
    /// Time from 10 % to 90 % of the final value (linear interpolation
    /// between samples); `None` when the waveform never crosses both.
    pub rise_time: Option<f64>,
    /// First time after which every sample stays within a ±2 % band of the
    /// final value; `None` when even the last sample is outside the band.
    /// The band is relative to `|final|` when that is nonzero; for a
    /// **zero final value** it falls back to ±2 % of the waveform's peak
    /// magnitude (the natural scale of a pulse that returns to zero), and
    /// an identically-zero waveform settles at `times[0]`. A non-finite
    /// final value never settles (`None`).
    pub settling_time: Option<f64>,
}

impl StepMetrics {
    /// Computes the metrics for one sampled waveform (`times` and `wave`
    /// must have equal, nonzero length).
    pub fn from_waveform(times: &[f64], wave: &[f64]) -> StepMetrics {
        assert_eq!(times.len(), wave.len(), "one sample per time point");
        assert!(!wave.is_empty(), "metrics need at least one sample");
        let final_value = *wave.last().expect("nonempty");
        let peak = wave.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let overshoot_pct = (final_value != 0.0 && final_value.is_finite() && peak.is_finite())
            .then(|| ((peak - final_value) / final_value.abs()).max(0.0) * 100.0);
        StepMetrics {
            final_value,
            peak,
            overshoot_pct,
            rise_time: rise_time(times, wave, final_value),
            settling_time: settling_time(times, wave, final_value),
        }
    }
}

/// First 10 % → 90 % crossing span, linearly interpolated.
fn rise_time(times: &[f64], wave: &[f64], final_value: f64) -> Option<f64> {
    let t_lo = crossing(times, wave, 0.1 * final_value)?;
    let t_hi = crossing(times, wave, 0.9 * final_value)?;
    (t_hi >= t_lo).then_some(t_hi - t_lo)
}

/// First time the waveform reaches `level` (toward it from the start).
fn crossing(times: &[f64], wave: &[f64], level: f64) -> Option<f64> {
    if level == 0.0 {
        return Some(times[0]);
    }
    let reached = |v: f64| {
        if level > 0.0 {
            v >= level
        } else {
            v <= level
        }
    };
    let k = wave.iter().position(|&v| reached(v))?;
    if k == 0 {
        return Some(times[0]);
    }
    let (v0, v1) = (wave[k - 1], wave[k]);
    let frac = if v1 == v0 { 1.0 } else { (level - v0) / (v1 - v0) };
    Some(times[k - 1] + frac * (times[k] - times[k - 1]))
}

/// First time after which the waveform stays inside the ±2 % band around
/// `final_value` (see [`StepMetrics::settling_time`] for the degenerate
/// semantics: zero final value uses the peak magnitude as the band scale,
/// non-finite never settles).
fn settling_time(times: &[f64], wave: &[f64], final_value: f64) -> Option<f64> {
    if !final_value.is_finite() {
        return None;
    }
    let scale = if final_value == 0.0 {
        wave.iter().fold(0.0f64, |a, &v| if v.is_finite() { a.max(v.abs()) } else { a })
    } else {
        final_value.abs()
    };
    if scale == 0.0 {
        // Identically zero waveform: settled from the first sample.
        return Some(times[0]);
    }
    let band = 0.02 * scale;
    // A NaN sample is out of band (never settled), so the comparison must
    // not swallow it.
    let out_of_band = |v: f64| {
        let d = (v - final_value).abs();
        d.is_nan() || d > band
    };
    match wave.iter().rposition(|&v| out_of_band(v)) {
        None => Some(times[0]),
        Some(k) if k + 1 < times.len() => Some(times[k + 1]),
        Some(_) => None,
    }
}

/// Node waveforms and run counters from one [`TransientAnalysis`].
#[derive(Clone, Debug)]
pub struct TransientResult {
    times: Vec<f64>,
    names: Vec<String>,
    waves: Vec<Vec<f64>>,
    /// Plan-reuse counters for the primary run (cross-check runs keep
    /// their own and are not merged in).
    pub stats: TransientStats,
    /// The integration method that produced the waveforms.
    pub method: IntegrationMethod,
    /// The (uniform) step size, seconds.
    pub dt: f64,
    /// Present when [`TransientAnalysis::cross_check`] was enabled.
    pub cross_check: Option<RichardsonCheck>,
}

impl TransientResult {
    /// The uniform time axis, including the initial point.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// One node's sampled voltage waveform.
    pub fn node(&self, name: &str) -> Option<&[f64]> {
        let k = self.names.iter().position(|n| n == name)?;
        Some(&self.waves[k])
    }

    /// Every `(node name, waveform)` pair, in MNA row order.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.names.iter().map(String::as_str).zip(self.waves.iter().map(Vec::as_slice))
    }

    /// Step metrics for one node's waveform.
    pub fn metrics(&self, name: &str) -> Option<StepMetrics> {
        Some(StepMetrics::from_waveform(&self.times, self.node(name)?))
    }
}

impl<'a> Session<'a> {
    /// Runs a transient analysis on the session circuit, driven by a
    /// `.TRAN` card (or a configured [`TransientAnalysis`]). The session's
    /// observer receives the run's [`Diagnostic::TransientStepped`]; spec,
    /// config, and solver are not consulted — time stepping needs no
    /// transfer function.
    ///
    /// # Errors
    ///
    /// See [`TransientAnalysis::run`].
    pub fn transient(
        self,
        analysis: impl Into<TransientAnalysis>,
    ) -> Result<TransientResult, RefgenError> {
        let (circuit, observer) = self.into_transient_parts();
        let mut null = NullObserver;
        analysis.into().run(circuit, observer.unwrap_or(&mut null))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::CollectObserver;
    use refgen_circuit::library::rc_ladder;
    use refgen_circuit::{parse_netlist, Waveform};

    fn step_wave() -> Waveform {
        Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: f64::INFINITY,
            period: f64::INFINITY,
        }
    }

    #[test]
    fn session_transient_tracks_rc_analytic() {
        let mut c = rc_ladder(1, 1e3, 1e-9);
        c.set_waveform("VIN", step_wave()).unwrap();
        let tau = 1e-6;
        let card = TranCard { tstep: tau / 100.0, tstop: 10.0 * tau, tstart: 0.0 };
        let mut obs = CollectObserver::new();
        let result = Session::for_circuit(&c)
            .observer(&mut obs)
            .transient(TransientAnalysis::new(card).cross_check(true))
            .unwrap();
        let wave = result.node("out").unwrap();
        for (k, (&t, &v)) in result.times().iter().zip(wave).enumerate() {
            let want = 1.0 - (-t / tau).exp();
            assert!((v - want).abs() < 5e-5, "step {k}: {v} vs {want}");
        }
        // Metrics of a first-order step: no overshoot, rise = τ·ln 9,
        // settling at τ·ln 50.
        let m = result.metrics("out").unwrap();
        assert!((m.final_value - 1.0).abs() < 1e-3);
        assert_eq!(m.overshoot_pct, Some(0.0));
        let rise = m.rise_time.unwrap();
        assert!((rise - tau * 9.0f64.ln()).abs() < 0.03 * tau, "rise {rise}");
        let settle = m.settling_time.unwrap();
        assert!((settle - tau * 50.0f64.ln()).abs() < 0.03 * tau, "settle {settle}");
        // The Richardson check bounds the observed truncation error.
        let check = result.cross_check.unwrap();
        assert!(check.max_abs_dev > 0.0 && check.error_estimate() < 1e-4, "{check:?}");
        // One TransientStepped event with the plan-reuse counters.
        let stepped = obs
            .events
            .iter()
            .find_map(|d| match d {
                Diagnostic::TransientStepped { steps, refactor_hits, compiled_hits } => {
                    Some((*steps, *refactor_hits, *compiled_hits))
                }
                _ => None,
            })
            .expect("TransientStepped streamed");
        assert_eq!(stepped.0, 1000);
        assert_eq!(stepped.1, 1, "one numeric factorization for the whole run");
        assert_eq!(stepped.2, 1001, "TR: one primer solve + one per step");
    }

    #[test]
    fn netlist_tran_card_drives_session_end_to_end() {
        let netlist = parse_netlist(
            "* RC step\n\
             VIN in 0 AC 1 PULSE(0 1)\n\
             R1 in out 1e3\n\
             C1 out 0 1e-9\n\
             .tran 2e-8 4e-6\n\
             .end\n",
        )
        .unwrap();
        let card = netlist.analysis.tran().expect(".TRAN parsed").clone();
        let result = Session::for_circuit(&netlist.circuit).transient(card).unwrap();
        assert_eq!(result.times().len(), 201);
        let wave = result.node("out").unwrap();
        assert!((wave.last().unwrap() - (1.0 - (-4.0f64).exp())).abs() < 1e-4);
        assert!(result.cross_check.is_none());
    }

    #[test]
    fn zero_final_value_highpass_pulse_metrics() {
        // The pulse response of an AC-coupled (high-pass) path: spikes up,
        // decays through a negative lobe, and settles at exactly zero.
        // Relative overshoot is undefined at a zero final value — `None`,
        // never NaN — and the settling band falls back to ±2 % of the
        // peak magnitude instead of an unreachable zero-width band.
        let times: Vec<f64> = (0..=100).map(|k| k as f64 * 1e-3).collect();
        let mut wave: Vec<f64> = (0..=100)
            .map(|k| (-(k as f64) / 8.0).exp() - 0.4 * (-(k as f64) / 25.0).exp())
            .collect();
        for v in wave.iter_mut().skip(90) {
            *v = 0.0;
        }
        let m = StepMetrics::from_waveform(&times, &wave);
        assert_eq!(m.final_value, 0.0);
        assert!(m.overshoot_pct.is_none(), "overshoot vs 0 is undefined: {:?}", m.overshoot_pct);
        let settle = m.settling_time.expect("decayed pulse settles in the peak-relative band");
        assert!(settle.is_finite() && settle > 0.0 && settle < *times.last().unwrap());

        // Identically-zero waveform: settled from the first sample.
        let z = StepMetrics::from_waveform(&times, &vec![0.0; times.len()]);
        assert_eq!(z.settling_time, Some(times[0]));
        assert!(z.overshoot_pct.is_none());

        // Sign-changing (falling) step to a negative final value keeps a
        // defined, finite overshoot relative to |final|.
        let fall: Vec<f64> = (0..=100).map(|k| -1.0 + (-(k as f64) / 8.0).exp()).collect();
        let f = StepMetrics::from_waveform(&times, &fall);
        let pct = f.overshoot_pct.expect("nonzero final value");
        assert!(pct.is_finite() && pct >= 0.0);

        // Non-finite samples poison nothing into NaN: overshoot and
        // settling are both `None`.
        let bad = StepMetrics::from_waveform(&[0.0, 1.0], &[0.5, f64::NAN]);
        assert!(bad.overshoot_pct.is_none());
        assert!(bad.settling_time.is_none());
    }

    #[test]
    fn underdamped_rlc_metrics_show_overshoot() {
        // Series RLC, Q = 10: overshoot ≈ exp(−πζ/√(1−ζ²)).
        let netlist = parse_netlist(
            "VIN in 0 AC 1 PULSE(0 1)\n\
             R1 in a 10\n\
             L1 a out 1e-6\n\
             C1 out 0 1e-9\n\
             .end\n",
        )
        .unwrap();
        let w0 = 1.0f64 / (1e-6f64 * 1e-9).sqrt();
        let q = (1e-6f64 / 1e-9).sqrt() / 10.0; // ≈ 3.16
        let zeta = 1.0 / (2.0 * q);
        let card =
            TranCard { tstep: 0.002 / w0 * std::f64::consts::TAU, tstop: 1.6e-6, tstart: 0.0 };
        let result = Session::for_circuit(&netlist.circuit)
            .transient(TransientAnalysis::new(card).method(IntegrationMethod::Trapezoidal))
            .unwrap();
        let m = result.metrics("out").unwrap();
        let want = 100.0 * (-std::f64::consts::PI * zeta / (1.0 - zeta * zeta).sqrt()).exp();
        let overshoot = m.overshoot_pct.expect("nonzero final value");
        assert!((overshoot - want).abs() < 1.0, "overshoot {overshoot} vs {want}");
        // Ring-down envelope e^{−t·R/2L} enters the ±2 % band at
        // t ≈ ln(50)·2L/R ≈ 0.78 µs.
        let settle = m.settling_time.unwrap();
        let envelope = 50.0f64.ln() * 2.0 * 1e-6 / 10.0;
        assert!(
            settle > 0.5 * envelope && settle < 1.5 * envelope,
            "settle {settle} vs envelope estimate {envelope}"
        );
    }

    #[test]
    fn backward_euler_is_selectable() {
        let mut c = rc_ladder(1, 1e3, 1e-9);
        c.set_waveform("VIN", step_wave()).unwrap();
        let card = TranCard { tstep: 1e-8, tstop: 1e-6, tstart: 0.0 };
        let result = Session::for_circuit(&c)
            .transient(TransientAnalysis::new(card).method(IntegrationMethod::BackwardEuler))
            .unwrap();
        assert_eq!(result.method, IntegrationMethod::BackwardEuler);
        assert_eq!(result.stats.compiled_hits, result.stats.steps, "BE has no primer solve");
    }
}
