//! One polynomial interpolation: batched sampling, exponent alignment,
//! inverse DFT, and the validity window of eq. (12).
//!
//! Sampling runs on the plan/execute engine: one `BatchSampler` (the
//! crate-private `batch` module) per window compiles a
//! [`SweepPlan`](refgen_mna::SweepPlan) (sparsity pattern, RHS template,
//! recorded pivot order) and evaluates all unit-circle points through
//! reused per-worker scratches — numeric refactorization instead of a
//! Markowitz pivot search per point, on [`RefgenConfig::threads`] workers
//! with bit-identical output at any thread count.

use crate::batch::BatchSampler;
use crate::config::RefgenConfig;
use crate::error::RefgenError;
use crate::runtime::SamplingRuntime;
use refgen_mna::{MnaSystem, OrderingChoice, Scale, TransferSpec};
use refgen_numeric::dft::{unit_circle_points, Dft};
use refgen_numeric::{Complex, ExtComplex, ExtFloat};

/// Which polynomial of the network function is being recovered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolyKind {
    /// `N(s) = H(s)·D(s)` (paper eq. (10)).
    Numerator,
    /// `D(s) = det(Y_MNA)` (paper eq. (9)).
    Denominator,
}

/// One polynomial of a compiled system, samplable at scaled unit-circle
/// points (the [`BatchSampler`] compiles a per-window plan from this).
pub(crate) struct Sampler<'a> {
    pub sys: &'a MnaSystem,
    pub spec: &'a TransferSpec,
    pub kind: PolyKind,
}

/// Known coefficients used by the problem-size reduction of eq. (17): the
/// unknown range is `[k, l]` and everything outside it in `0..=n` is in
/// `known` (declared-zero coefficients may simply be omitted — subtracting
/// zero is a no-op).
#[derive(Clone, Debug, Default)]
pub(crate) struct Reduction {
    /// Lowest unknown coefficient index.
    pub k: usize,
    /// Highest unknown coefficient index.
    pub l: usize,
    /// Denormalized known coefficients outside `[k, l]`.
    pub known: Vec<(usize, ExtComplex)>,
}

/// The result of one interpolation: normalized coefficients `p'_i` over a
/// global index range, with the validity window of eq. (12).
#[derive(Clone, Debug)]
pub struct Window {
    /// Scale factors used.
    pub scale: Scale,
    /// Global coefficient index of `normalized[0]`.
    pub offset: usize,
    /// Normalized coefficients `p'_i = p_i·f^i·g^{M−i}` (complex — the
    /// imaginary parts are a round-off diagnostic, cf. Table 1a).
    pub normalized: Vec<ExtComplex>,
    /// Validity threshold `10^{−(13−σ)}·max_i|p'_i|`.
    pub threshold: ExtFloat,
    /// Global index of the largest normalized coefficient (the
    /// "dark-shadowed" coefficient of Table 2).
    pub max_idx: usize,
    /// The selected contiguous valid region (global indices, inclusive), or
    /// `None` when every sample was zero.
    pub region: Option<(usize, usize)>,
    /// Number of interpolation points spent.
    pub points: usize,
    /// Whether eq. (17) reduction was applied.
    pub reduced: bool,
    /// Absolute round-off floor of this interpolation:
    /// `10^{−noise_decades}·S`, where `S` is the largest magnitude that
    /// entered the computation (raw samples and subtracted known terms).
    /// Coefficients below this are indistinguishable from noise no matter
    /// how they compare to the window maximum.
    pub noise_floor: ExtFloat,
    /// Worker threads the sampling batch used.
    pub threads: usize,
    /// Sampling points that reused the window plan's recorded pivot order
    /// (numeric refactorization instead of a Markowitz pivot search).
    pub refactor_hits: u64,
    /// The subset of [`Window::refactor_hits`] that ran through the
    /// compiled symbolic kernel (flat instruction-stream replay — zero
    /// per-point sorting, searching, insertion, or allocation).
    pub compiled_hits: u64,
    /// Sampling points obtained as exact conjugates of a solved partner
    /// (conjugate-pair halving) instead of their own factorization.
    pub mirrored: u64,
    /// Sampling points rescued by rung 1 of the singular-recovery ladder
    /// (fresh value-aware Markowitz factorization after a dead replay).
    pub recovered_fresh: u64,
    /// Sampling points rescued by rung 2 (recompile under the alternate
    /// ordering family and replay).
    pub recovered_reordered: u64,
    /// The sampling plan's pivot-ordering decision — system dimension plus
    /// the recorded fill numbers — feeding
    /// [`Diagnostic::OrderingSelected`](crate::Diagnostic::OrderingSelected).
    /// `None` when the plan carries no recorded choice (singular probe).
    pub ordering: Option<(usize, OrderingChoice)>,
}

impl Window {
    /// Normalized coefficient at global index `i`, if inside this window.
    pub fn normalized_at(&self, i: usize) -> Option<ExtComplex> {
        i.checked_sub(self.offset).and_then(|j| self.normalized.get(j)).copied()
    }

    /// `true` if global index `i` passes the eq. (12) validity test.
    pub fn is_valid(&self, i: usize) -> bool {
        match self.normalized_at(i) {
            Some(c) => !c.is_zero() && c.norm() >= self.threshold,
            None => false,
        }
    }

    /// Significant margin of coefficient `i`: decades above the validity
    /// threshold (≥ 0 for valid coefficients). Higher = more digits.
    pub fn quality(&self, i: usize) -> f64 {
        match self.normalized_at(i) {
            Some(c) if !c.is_zero() && !self.threshold.is_zero() => {
                (c.norm() / self.threshold).log10()
            }
            _ => f64::NEG_INFINITY,
        }
    }

    /// `true` when every sample (hence every coefficient) was exactly zero.
    pub fn all_zero(&self) -> bool {
        self.region.is_none()
    }
}

/// Performs one interpolation of eq. (5), optionally reduced per eq. (17).
///
/// * `n_max` — upper bound on the polynomial order (sets `K = n_max+1`
///   when unreduced).
/// * `m_adm` — admittance degree used to renormalize known coefficients
///   into the current scaling during reduction.
pub(crate) fn interpolate_window(
    sampler: &Sampler<'_>,
    scale: Scale,
    n_max: usize,
    m_adm: i64,
    reduction: Option<&Reduction>,
    config: &RefgenConfig,
    runtime: &SamplingRuntime,
) -> Result<Window, RefgenError> {
    let (k_lo, k_hi) = match reduction {
        Some(r) => {
            debug_assert!(r.k <= r.l && r.l <= n_max);
            (r.k, r.l)
        }
        None => (0, n_max),
    };
    let k_points = k_hi - k_lo + 1;
    let sigmas = unit_circle_points(k_points);

    let f_ext = ExtFloat::from_f64(scale.f);
    let g_ext = ExtFloat::from_f64(scale.g);
    // Renormalized known coefficients for subtraction: p̃_i = p_i·f^i·g^{M−i}.
    let renorm_known: Vec<(usize, ExtComplex)> = reduction
        .map(|r| {
            r.known
                .iter()
                .map(|&(i, c)| {
                    let factor = f_ext.powi(i as i64) * g_ext.powi(m_adm - i as i64);
                    (i, c.scale_ext(factor))
                })
                .collect()
        })
        .unwrap_or_default();

    // Sample as one batch on the plan/execute engine (pivot-order reuse,
    // config.threads workers, index-ordered results), then subtract knowns
    // and shift down by σ^{k_lo}. Track the largest magnitude that enters
    // the computation: the sampling and subtraction round-off is relative
    // to it.
    let batch = BatchSampler::new(sampler, scale, config, runtime)?;
    let (raw_samples, batch_stats) = batch.sample_all(&sigmas, runtime)?;
    let mut raw_mag = ExtFloat::ZERO;
    for &(_, c) in &renorm_known {
        raw_mag = raw_mag.max_abs(c.norm());
    }
    let mut samples = Vec::with_capacity(k_points);
    for (&sigma, &raw) in sigmas.iter().zip(&raw_samples) {
        let mut v = raw;
        raw_mag = raw_mag.max_abs(v.norm());
        if reduction.is_some() {
            for &(i, c) in &renorm_known {
                v -= c * sigma.powi(i as i32);
            }
            if k_lo > 0 {
                // |σ| = 1, so σ^{−k} = conj(σ)^k exactly.
                v = v * sigma.conj().powi(k_lo as i32);
            }
        }
        samples.push(v);
    }
    let noise_floor = if raw_mag.is_zero() {
        ExtFloat::ZERO
    } else {
        raw_mag * ExtFloat::exp10(-config.noise_decades)
    };

    // Exponent alignment: bring all samples to the largest exponent. Samples
    // more than ~36 decades below the maximum flush to zero — which is far
    // below the f64 round-off floor being modeled, so nothing of value is
    // lost.
    let e0 = samples.iter().filter(|s| !s.is_zero()).map(|s| s.exponent()).max();
    let Some(e0) = e0 else {
        // All samples exactly zero: the polynomial is zero on this range.
        return Ok(Window {
            scale,
            offset: k_lo,
            normalized: vec![ExtComplex::ZERO; k_points],
            threshold: ExtFloat::ZERO,
            max_idx: k_lo,
            region: None,
            points: k_points,
            reduced: reduction.is_some(),
            noise_floor,
            threads: batch_stats.threads,
            refactor_hits: batch_stats.refactor_hits,
            compiled_hits: batch_stats.compiled_hits,
            mirrored: batch_stats.mirrored,
            recovered_fresh: batch_stats.recovered_fresh,
            recovered_reordered: batch_stats.recovered_reordered,
            ordering: batch.ordering(),
        });
    };
    let mantissas: Vec<Complex> = samples.iter().map(|s| s.mantissa_at_exponent(e0)).collect();

    // Inverse DFT per eq. (5): coefficients = forward(samples)/K.
    let plan = Dft::new(k_points);
    let spectrum = plan.forward(&mantissas);
    let inv_k = 1.0 / k_points as f64;
    let normalized: Vec<ExtComplex> =
        spectrum.iter().map(|&c| ExtComplex::new(c.scale(inv_k), e0)).collect();

    // Validity window (eq. (12)).
    let mut max_idx = 0usize;
    let mut max_norm = ExtFloat::ZERO;
    for (j, c) in normalized.iter().enumerate() {
        let n = c.norm();
        if n > max_norm {
            max_norm = n;
            max_idx = j;
        }
    }
    // The validity threshold is `10^{sig_digits}` above the *absolute*
    // round-off floor. For a plain full interpolation the samples and the
    // largest coefficient have comparable magnitudes, so this coincides
    // with the paper's `10^{−13+σ}·max_i|p'_i|` criterion (eq. (12)); for
    // reduced interpolations it additionally rejects windows whose entire
    // content is subtraction residue — which is how the true polynomial
    // order is detected (§3.3).
    let threshold = noise_floor * ExtFloat::exp10(config.sig_digits as f64);
    if max_norm.is_zero() || max_norm < threshold {
        return Ok(Window {
            scale,
            offset: k_lo,
            normalized,
            threshold,
            max_idx: k_lo + max_idx,
            region: None,
            points: k_points,
            reduced: reduction.is_some(),
            noise_floor,
            threads: batch_stats.threads,
            refactor_hits: batch_stats.refactor_hits,
            compiled_hits: batch_stats.compiled_hits,
            mirrored: batch_stats.mirrored,
            recovered_fresh: batch_stats.recovered_fresh,
            recovered_reordered: batch_stats.recovered_reordered,
            ordering: batch.ordering(),
        });
    }
    // Second validity criterion, straight from the paper's §2.2 discussion
    // of Table 1a: the circuit's coefficients are real, so a recovered
    // coefficient whose imaginary part is comparable to its real part is
    // round-off garbage regardless of magnitude. (This is what rejects
    // whole windows when an extreme tilt has degraded the LU itself.)
    let imag_tol = 10f64.powf(-(config.sig_digits as f64) / 2.0);
    let valid: Vec<bool> = normalized
        .iter()
        .map(|c| {
            if c.is_zero() || c.norm() < threshold {
                return false;
            }
            let im = c.im().abs();
            let re = c.re().abs();
            im <= re * ExtFloat::from_f64(imag_tol)
        })
        .collect();
    if !valid[max_idx] {
        // The dominant coefficient itself fails the reality test: nothing
        // in this window can be trusted.
        return Ok(Window {
            scale,
            offset: k_lo,
            normalized,
            threshold,
            max_idx: k_lo + max_idx,
            region: None,
            points: k_points,
            reduced: reduction.is_some(),
            noise_floor,
            threads: batch_stats.threads,
            refactor_hits: batch_stats.refactor_hits,
            compiled_hits: batch_stats.compiled_hits,
            mirrored: batch_stats.mirrored,
            recovered_fresh: batch_stats.recovered_fresh,
            recovered_reordered: batch_stats.recovered_reordered,
            ordering: batch.ordering(),
        });
    }
    // Contiguous run containing the maximum.
    let mut lo = max_idx;
    while lo > 0 && valid[lo - 1] {
        lo -= 1;
    }
    let mut hi = max_idx;
    while hi + 1 < valid.len() && valid[hi + 1] {
        hi += 1;
    }

    Ok(Window {
        scale,
        offset: k_lo,
        normalized,
        threshold,
        max_idx: k_lo + max_idx,
        region: Some((k_lo + lo, k_lo + hi)),
        points: k_points,
        reduced: reduction.is_some(),
        noise_floor,
        threads: batch_stats.threads,
        refactor_hits: batch_stats.refactor_hits,
        compiled_hits: batch_stats.compiled_hits,
        mirrored: batch_stats.mirrored,
        recovered_fresh: batch_stats.recovered_fresh,
        recovered_reordered: batch_stats.recovered_reordered,
        ordering: batch.ordering(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::rc_ladder;
    use refgen_mna::MnaSystem;

    fn ladder_sampler(n: usize) -> (MnaSystem, TransferSpec) {
        let c = rc_ladder(n, 1e3, 1e-9);
        (MnaSystem::new(&c).unwrap(), TransferSpec::voltage_gain("VIN", "out"))
    }

    /// One window through a fresh per-call runtime (what a standalone
    /// solve does).
    fn interp(
        sampler: &Sampler<'_>,
        scale: Scale,
        n_max: usize,
        m_adm: i64,
        reduction: Option<&Reduction>,
        config: &RefgenConfig,
    ) -> Result<Window, RefgenError> {
        interpolate_window(
            sampler,
            scale,
            n_max,
            m_adm,
            reduction,
            config,
            &SamplingRuntime::new(config),
        )
    }

    #[test]
    fn uniform_ladder_single_window_covers_all() {
        // With the natural scale (f = 1/RC·…) a uniform ladder's normalized
        // coefficients are all O(1): one window captures everything.
        let (sys, spec) = ladder_sampler(5);
        let sampler = Sampler { sys: &sys, spec: &spec, kind: PolyKind::Denominator };
        let scale = Scale::new(1.0 / 1e-9, 1e3); // caps → 1, conductances → 1
        let cfg = RefgenConfig::default();
        let w = interp(&sampler, scale, 5, sys.admittance_degree(), None, &cfg).unwrap();
        assert_eq!(w.region, Some((0, 5)));
        assert_eq!(w.points, 6);
        assert!(!w.reduced);
        for i in 0..=5 {
            assert!(w.is_valid(i), "coefficient {i}");
            assert!(w.quality(i) > 0.0);
        }
    }

    #[test]
    fn numerator_of_ladder_is_constant() {
        // v(out)·D = N: for an RC ladder N(s) is the constant ∏G (no zeros).
        let (sys, spec) = ladder_sampler(4);
        let sampler = Sampler { sys: &sys, spec: &spec, kind: PolyKind::Numerator };
        let scale = Scale::new(1e9, 1e3);
        let cfg = RefgenConfig::default();
        let w = interp(&sampler, scale, 4, sys.admittance_degree(), None, &cfg).unwrap();
        let (lo, hi) = w.region.unwrap();
        assert_eq!((lo, hi), (0, 0), "only p0 valid, got {:?}", w.region);
        assert!(w.quality(0) > 5.0);
        assert!(!w.is_valid(1));
    }

    #[test]
    fn unscaled_interpolation_loses_small_coefficients() {
        // The §2.2 phenomenon: with unit scaling, an IC-valued ladder's
        // higher coefficients fall below the round-off floor.
        let (sys, spec) = ladder_sampler(6);
        let sampler = Sampler { sys: &sys, spec: &spec, kind: PolyKind::Denominator };
        let cfg = RefgenConfig::default();
        let w = interp(&sampler, Scale::unit(), 6, sys.admittance_degree(), None, &cfg).unwrap();
        let (lo, hi) = w.region.unwrap();
        // p0 (no caps) dominates; the window must NOT reach p6
        // (ratio per step is g/c = 1e-3/1e-9 = 1e6 → floor hit by p3).
        assert_eq!(lo, 0);
        assert!(hi < 3, "window {:?}", w.region);
    }

    #[test]
    fn reduction_matches_full_interpolation() {
        let (sys, spec) = ladder_sampler(5);
        let sampler = Sampler { sys: &sys, spec: &spec, kind: PolyKind::Denominator };
        let cfg = RefgenConfig::default();
        let m = sys.admittance_degree();
        let scale = Scale::new(1e9, 1e3);
        let full = interp(&sampler, scale, 5, m, None, &cfg).unwrap();
        // Denormalize p0, p1 from the full window and hand them to a reduced
        // interpolation of p2..p5.
        let f_ext = ExtFloat::from_f64(scale.f);
        let g_ext = ExtFloat::from_f64(scale.g);
        let denorm = |i: usize| {
            let factor = f_ext.powi(i as i64) * g_ext.powi(m - i as i64);
            full.normalized_at(i).unwrap().scale_ext(ExtFloat::ONE / factor)
        };
        let red = Reduction { k: 2, l: 5, known: vec![(0, denorm(0)), (1, denorm(1))] };
        let reduced = interp(&sampler, scale, 5, m, Some(&red), &cfg).unwrap();
        assert_eq!(reduced.points, 4);
        assert!(reduced.reduced);
        for i in 2..=5 {
            let a = full.normalized_at(i).unwrap();
            let b = reduced.normalized_at(i).unwrap();
            let rel = ((a - b).norm() / a.norm()).to_f64();
            assert!(rel < 1e-9, "i={i}, rel={rel}");
        }
    }

    #[test]
    fn sequential_sampling_reuses_pivot_order() {
        // Even at threads = 1, every solved point of a window must replay
        // the window plan's recorded pivot order — through the compiled
        // kernel — and the lower half-circle must be mirrored, not solved
        // (the counters prove all three).
        let (sys, spec) = ladder_sampler(8);
        let cfg = RefgenConfig { threads: 1, conjugate_mirror: true, ..RefgenConfig::default() };
        for kind in [PolyKind::Denominator, PolyKind::Numerator] {
            let sampler = Sampler { sys: &sys, spec: &spec, kind };
            let w = interp(&sampler, Scale::new(1e9, 1e3), 8, sys.admittance_degree(), None, &cfg)
                .unwrap();
            assert_eq!(w.points, 9);
            assert_eq!(w.threads, 1);
            // 9 conjugate-paired points: σ₀ is real, σ₁..σ₄ are solved,
            // σ₅..σ₈ are their exact conjugates.
            assert_eq!(w.mirrored, 4, "{kind:?}: lower half-circle is mirrored");
            assert_eq!(w.refactor_hits, 5, "{kind:?}: every solve reuses the pivot order");
            assert_eq!(w.compiled_hits, 5, "{kind:?}: every solve runs the compiled kernel");
        }
        // With mirroring off, every point is its own solve.
        let full = RefgenConfig { threads: 1, conjugate_mirror: false, ..RefgenConfig::default() };
        let sampler = Sampler { sys: &sys, spec: &spec, kind: PolyKind::Denominator };
        let w = interp(&sampler, Scale::new(1e9, 1e3), 8, sys.admittance_degree(), None, &full)
            .unwrap();
        assert_eq!((w.refactor_hits, w.compiled_hits, w.mirrored), (9, 9, 0));
    }

    #[test]
    fn mirrored_window_is_bit_identical_to_full_sweep() {
        let (sys, spec) = ladder_sampler(9);
        let m = sys.admittance_degree();
        for kind in [PolyKind::Denominator, PolyKind::Numerator] {
            let sampler = Sampler { sys: &sys, spec: &spec, kind };
            let run = |mirror: bool| {
                let cfg = RefgenConfig { conjugate_mirror: mirror, ..RefgenConfig::default() };
                interp(&sampler, Scale::new(1e9, 1e3), 9, m, None, &cfg).unwrap()
            };
            let on = run(true);
            let off = run(false);
            assert!(on.mirrored > 0 && off.mirrored == 0);
            // Debug formatting of f64 round-trips, so equal strings mean
            // bit-equal coefficients.
            assert_eq!(
                format!("{:?}", on.normalized),
                format!("{:?}", off.normalized),
                "{kind:?}: mirroring must not change a single bit"
            );
            assert_eq!(on.region, off.region);
        }
    }

    #[test]
    fn parallel_sampling_is_bit_identical() {
        let (sys, spec) = ladder_sampler(10);
        let m = sys.admittance_degree();
        for kind in [PolyKind::Denominator, PolyKind::Numerator] {
            let sampler = Sampler { sys: &sys, spec: &spec, kind };
            let run = |threads: usize| {
                let cfg = RefgenConfig { threads, ..RefgenConfig::default() };
                interp(&sampler, Scale::new(1e9, 1e3), 10, m, None, &cfg).unwrap()
            };
            let one = run(1);
            assert_eq!(one.threads, 1);
            for threads in [2, 4, 0] {
                let w = run(threads);
                // Debug formatting of f64 round-trips, so equal strings
                // mean bit-equal coefficients.
                assert_eq!(
                    format!("{:?}", w.normalized),
                    format!("{:?}", one.normalized),
                    "{kind:?} at threads = {threads}"
                );
                assert_eq!(w.region, one.region);
                assert_eq!(w.refactor_hits, one.refactor_hits);
                assert!(w.threads >= 1);
            }
        }
    }

    #[test]
    fn zero_polynomial_detected() {
        // Numerator sampling on an output node isolated from the input by
        // the element pattern is never exactly zero here; instead test the
        // all-zero path directly through a reduction that subtracts
        // everything.
        let (sys, spec) = ladder_sampler(2);
        let sampler = Sampler { sys: &sys, spec: &spec, kind: PolyKind::Numerator };
        let cfg = RefgenConfig::default();
        let m = sys.admittance_degree();
        let scale = Scale::new(1e9, 1e3);
        let full = interp(&sampler, scale, 2, m, None, &cfg).unwrap();
        // Numerator is the constant p0: subtract it and interpolate 1..2.
        let f_ext = ExtFloat::from_f64(scale.f);
        let g_ext = ExtFloat::from_f64(scale.g);
        let p0 = full
            .normalized_at(0)
            .unwrap()
            .scale_ext(ExtFloat::ONE / (f_ext.powi(0) * g_ext.powi(m)));
        let red = Reduction { k: 1, l: 2, known: vec![(0, p0)] };
        let w = interp(&sampler, scale, 2, m, Some(&red), &cfg).unwrap();
        // Residual coefficients are pure round-off: many decades below the
        // unreduced p0 level.
        if let Some((lo, hi)) = w.region {
            for i in lo..=hi {
                let resid = w.normalized_at(i).unwrap().norm();
                let rel = (resid / full.normalized_at(0).unwrap().norm()).log10();
                assert!(rel < -9.0, "i={i}, rel=1e{rel:.1}");
            }
        }
    }
}
