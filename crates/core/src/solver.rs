//! The [`Solver`] abstraction: one interface over every way this workspace
//! can answer "give me `H(s)` for this circuit and spec".
//!
//! The paper's adaptive algorithm, the three conventional baselines it is
//! compared against, and any future backend (parallel per-window sampling,
//! batched multi-circuit solves) all implement [`Solver`], so consumers —
//! SBG/SDG error control, the experiment runners, user code — are written
//! once against `&dyn Solver` and can swap methods freely. Construction is
//! most convenient through [`Session`](crate::session::Session).

use crate::adaptive::{NetworkFunction, PolyReport};
use crate::diagnostic::{Diagnostic, NullObserver, Observer};
use crate::error::RefgenError;
use crate::runtime::SamplingRuntime;
use crate::window::PolyKind;
use refgen_circuit::Circuit;
use refgen_mna::TransferSpec;
use refgen_numeric::ExtPoly;

/// The answer a [`Solver`] produces: a recovered network function plus the
/// full diagnostic trail of how it was obtained.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The recovered `H(s) = N(s)/D(s)` with per-polynomial run reports.
    pub network: NetworkFunction,
    /// Name of the method that produced it (see [`Solver::name`]).
    pub method: &'static str,
}

impl Solution {
    /// All diagnostics, denominator first (the recovery order), then
    /// numerator.
    pub fn diagnostics(&self) -> impl Iterator<Item = &Diagnostic> {
        self.network
            .report
            .denominator
            .diagnostics
            .iter()
            .chain(self.network.report.numerator.diagnostics.iter())
    }

    /// Diagnostics of [`Severity::Warning`](crate::diagnostic::Severity)
    /// across both polynomials.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics().filter(|d| d.severity() == crate::diagnostic::Severity::Warning)
    }

    /// Total interpolation points spent across both polynomials — the
    /// paper's CPU-cost currency.
    pub fn total_points(&self) -> usize {
        self.network.report.numerator.total_points + self.network.report.denominator.total_points
    }

    /// Total sampling points (both polynomials) that reused their window
    /// plan's recorded pivot order — evidence the plan/execute engine's
    /// cheap numeric-refactorization path carried the solve.
    pub fn refactor_hits(&self) -> u64 {
        self.network.report.numerator.refactor_hits + self.network.report.denominator.refactor_hits
    }
}

impl std::ops::Deref for Solution {
    type Target = NetworkFunction;

    fn deref(&self) -> &NetworkFunction {
        &self.network
    }
}

/// A reference-generation method: anything that can recover the network
/// function of a circuit/spec pair.
///
/// Implementations in this crate:
///
/// * [`AdaptiveInterpolator`](crate::AdaptiveInterpolator) — the paper's
///   adaptive-scaling sequence of interpolations;
/// * [`UnitCircleSolver`](crate::baseline::UnitCircleSolver) — one plain
///   unit-circle interpolation (Table 1a baseline);
/// * [`StaticScalingSolver`](crate::baseline::StaticScalingSolver) — one
///   interpolation at a fixed scale (Table 1b baseline);
/// * [`MultiScaleGridSolver`](crate::baseline::MultiScaleGridSolver) — the
///   §3.1 pre-chosen grid of scales.
///
/// Only [`Solver::solve_observed`] is required; the other methods have
/// default implementations in terms of it.
pub trait Solver {
    /// Short stable identifier (`"adaptive"`, `"unit-circle"`, …) used in
    /// reports and bench labels.
    fn name(&self) -> &'static str;

    /// Recovers the network function, streaming [`Diagnostic`] events to
    /// `observer` as the solve progresses.
    ///
    /// # Errors
    ///
    /// Method-specific; see each implementation. All errors are typed
    /// [`RefgenError`]s.
    fn solve_observed(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
    ) -> Result<Solution, RefgenError>;

    /// Recovers the network function without streaming diagnostics (they
    /// are still recorded in the [`Solution`]).
    ///
    /// # Errors
    ///
    /// See [`Solver::solve_observed`].
    fn solve(&self, circuit: &Circuit, spec: &TransferSpec) -> Result<Solution, RefgenError> {
        self.solve_observed(circuit, spec, &mut NullObserver)
    }

    /// Recovers the network function using a caller-supplied
    /// [`SamplingRuntime`] — the seam batch sessions use to share one
    /// worker pool and one pivot-order cache across a whole fleet of
    /// same-topology solves.
    ///
    /// The default implementation ignores the runtime and performs a
    /// plain [`Solver::solve_observed`] (always correct: a shared runtime
    /// is an amortization, never a semantic change). Solvers built on the
    /// batched sampling engine override it to actually share resources.
    ///
    /// # Errors
    ///
    /// See [`Solver::solve_observed`].
    fn solve_with_runtime(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<Solution, RefgenError> {
        let _ = runtime;
        self.solve_observed(circuit, spec, observer)
    }

    /// Recovers a single polynomial of the network function.
    ///
    /// The default implementation performs a full solve and projects out
    /// the requested polynomial; implementations able to sample one
    /// polynomial in isolation (like the adaptive driver) override this to
    /// halve the work — and to succeed on circuits where the *other*
    /// polynomial cannot even be sampled (e.g. a singular system whose
    /// determinant is identically zero).
    ///
    /// # Errors
    ///
    /// See [`Solver::solve_observed`].
    fn solve_polynomial(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        kind: PolyKind,
        observer: &mut dyn Observer,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        let solution = self.solve_observed(circuit, spec, observer)?;
        let report = solution.network.report;
        Ok(match kind {
            PolyKind::Numerator => (solution.network.numerator, report.numerator),
            PolyKind::Denominator => (solution.network.denominator, report.denominator),
        })
    }
}

impl<S: Solver + ?Sized> Solver for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn solve_observed(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
    ) -> Result<Solution, RefgenError> {
        (**self).solve_observed(circuit, spec, observer)
    }

    fn solve_with_runtime(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<Solution, RefgenError> {
        (**self).solve_with_runtime(circuit, spec, observer, runtime)
    }

    fn solve_polynomial(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        kind: PolyKind,
        observer: &mut dyn Observer,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        (**self).solve_polynomial(circuit, spec, kind, observer)
    }
}

impl<S: Solver + ?Sized> Solver for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn solve_observed(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
    ) -> Result<Solution, RefgenError> {
        (**self).solve_observed(circuit, spec, observer)
    }

    fn solve_with_runtime(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<Solution, RefgenError> {
        (**self).solve_with_runtime(circuit, spec, observer, runtime)
    }

    fn solve_polynomial(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        kind: PolyKind,
        observer: &mut dyn Observer,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        (**self).solve_polynomial(circuit, spec, kind, observer)
    }
}
