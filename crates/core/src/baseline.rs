//! The conventional interpolation methods the paper compares against.
//!
//! * [`static_interpolation`] — one interpolation at a fixed [`Scale`].
//!   With `Scale::unit()` this is the classical unit-circle method whose
//!   round-off failure Table 1a demonstrates; with a hand-picked frequency
//!   scale it reproduces Table 1b.
//! * [`multi_scale_grid`] — the §3.1 strawman: a pre-chosen grid of scale
//!   factors, merging whatever windows happen to be valid. The ablation
//!   bench compares its interpolation count and coverage against the
//!   adaptive algorithm.

use crate::config::RefgenConfig;
use crate::error::RefgenError;
use crate::window::{interpolate_window, PolyKind, Sampler, Window};
use refgen_circuit::Circuit;
use refgen_mna::{MnaSystem, Scale, TransferSpec};
use refgen_numeric::{ExtComplex, ExtFloat};

/// Result of a single fixed-scale interpolation of both polynomials.
#[derive(Clone, Debug)]
pub struct StaticInterpolation {
    /// Scale used.
    pub scale: Scale,
    /// Numerator window (normalized coefficients + validity).
    pub numerator: Window,
    /// Denominator window.
    pub denominator: Window,
    /// Admittance degree used for denormalization.
    pub admittance_degree: i64,
}

impl StaticInterpolation {
    /// Denormalized coefficient `p_i = p'_i/(f^i·g^{M−i})` of the selected
    /// polynomial, regardless of validity (Table 1a prints the garbage too).
    pub fn denormalized(&self, kind: PolyKind, i: usize) -> Option<ExtComplex> {
        let w = match kind {
            PolyKind::Numerator => &self.numerator,
            PolyKind::Denominator => &self.denominator,
        };
        let norm = w.normalized_at(i)?;
        let f = ExtFloat::from_f64(self.scale.f);
        let g = ExtFloat::from_f64(self.scale.g);
        let factor = f.powi(i as i64) * g.powi(self.admittance_degree - i as i64);
        Some(norm.scale_ext(ExtFloat::ONE / factor))
    }
}

/// One interpolation at a fixed scale with `K = reactive_count + 1` points.
///
/// # Errors
///
/// Propagates MNA errors; rejects unscalable circuits.
pub fn static_interpolation(
    circuit: &Circuit,
    spec: &TransferSpec,
    scale: Scale,
    config: &RefgenConfig,
) -> Result<StaticInterpolation, RefgenError> {
    let sys = MnaSystem::new(circuit)?;
    if sys.has_unscalable_elements() {
        return Err(RefgenError::Unscalable);
    }
    let n_max = sys.circuit().reactive_count();
    if n_max == 0 {
        return Err(RefgenError::NoReactiveElements);
    }
    let m = sys.admittance_degree();
    let den = interpolate_window(
        &Sampler { sys: &sys, spec, kind: PolyKind::Denominator },
        scale,
        n_max,
        m,
        None,
        config,
    )?;
    let num = interpolate_window(
        &Sampler { sys: &sys, spec, kind: PolyKind::Numerator },
        scale,
        n_max,
        m,
        None,
        config,
    )?;
    Ok(StaticInterpolation { scale, numerator: num, denominator: den, admittance_degree: m })
}

/// Coverage outcome of the naive multi-scale grid of §3.1.
#[derive(Clone, Debug)]
pub struct GridOutcome {
    /// Scales attempted.
    pub scales: Vec<Scale>,
    /// For each coefficient index, whether some window validated it.
    pub covered: Vec<bool>,
    /// Total interpolation points spent.
    pub total_points: usize,
    /// Merged denormalized denominator coefficients (best-quality window
    /// per index; `None` where uncovered).
    pub denominator: Vec<Option<ExtComplex>>,
}

impl GridOutcome {
    /// Number of covered coefficients.
    pub fn covered_count(&self) -> usize {
        self.covered.iter().filter(|&&c| c).count()
    }

    /// `true` when every coefficient was captured by some window.
    pub fn complete(&self) -> bool {
        self.covered.iter().all(|&c| c)
    }
}

/// Runs the §3.1 strawman on the denominator: a log-spaced grid of
/// `count` frequency scale factors between `f_lo` and `f_hi` (conductance
/// scale fixed at the mean heuristic), merging valid windows.
///
/// The paper's §3.1 point is precisely that this either wastes
/// interpolations (grid too fine) or leaves holes (grid too coarse) —
/// the ablation bench quantifies both against the adaptive algorithm.
///
/// # Errors
///
/// Propagates MNA errors.
///
/// # Panics
///
/// Panics if `count < 2` or the bounds are not positive/ordered.
pub fn multi_scale_grid(
    circuit: &Circuit,
    spec: &TransferSpec,
    f_lo: f64,
    f_hi: f64,
    count: usize,
    config: &RefgenConfig,
) -> Result<GridOutcome, RefgenError> {
    assert!(count >= 2 && f_lo > 0.0 && f_hi > f_lo);
    let sys = MnaSystem::new(circuit)?;
    if sys.has_unscalable_elements() {
        return Err(RefgenError::Unscalable);
    }
    let n_max = sys.circuit().reactive_count();
    if n_max == 0 {
        return Err(RefgenError::NoReactiveElements);
    }
    let m = sys.admittance_degree();
    let gs = circuit.conductance_values();
    let g = 1.0 / refgen_numeric::stats::mean(&gs).expect("conductances exist");
    let sampler = Sampler { sys: &sys, spec, kind: PolyKind::Denominator };

    let mut scales = Vec::with_capacity(count);
    let mut covered = vec![false; n_max + 1];
    let mut best: Vec<Option<(f64, ExtComplex)>> = vec![None; n_max + 1];
    let mut total_points = 0usize;
    for i in 0..count {
        let t = i as f64 / (count - 1) as f64;
        let f = 10f64.powf(f_lo.log10() + t * (f_hi.log10() - f_lo.log10()));
        let scale = Scale::new(f, g);
        scales.push(scale);
        let w = interpolate_window(&sampler, scale, n_max, m, None, config)?;
        total_points += w.points;
        if let Some((lo, hi)) = w.region {
            let f_ext = ExtFloat::from_f64(scale.f);
            let g_ext = ExtFloat::from_f64(scale.g);
            for idx in lo..=hi {
                covered[idx] = true;
                let q = w.quality(idx);
                let keep = best[idx].map(|(oldq, _)| q > oldq).unwrap_or(true);
                if keep {
                    let factor = f_ext.powi(idx as i64) * g_ext.powi(m - idx as i64);
                    let val =
                        w.normalized_at(idx).expect("in region").scale_ext(ExtFloat::ONE / factor);
                    best[idx] = Some((q, val));
                }
            }
        }
    }
    Ok(GridOutcome {
        scales,
        covered,
        total_points,
        denominator: best.into_iter().map(|b| b.map(|(_, v)| v)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveInterpolator;
    use refgen_circuit::library::{positive_feedback_ota, rc_ladder};

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    #[test]
    fn unit_circle_fails_on_ota() {
        // Table 1a's phenomenon: with no scaling, only the lowest OTA
        // coefficients survive.
        let c = positive_feedback_ota();
        let cfg = RefgenConfig::default();
        let si = static_interpolation(&c, &spec(), Scale::unit(), &cfg).unwrap();
        let (lo, hi) = si.denominator.region.unwrap();
        assert_eq!(lo, 0);
        assert!(hi <= 2, "unit-circle interpolation should lose p3.., got {:?}", (lo, hi));
    }

    #[test]
    fn frequency_scaling_recovers_more() {
        // Table 1b: a 1e9-ish frequency scale widens the valid window.
        let c = positive_feedback_ota();
        let cfg = RefgenConfig::default();
        let unscaled = static_interpolation(&c, &spec(), Scale::unit(), &cfg).unwrap();
        let scaled = static_interpolation(&c, &spec(), Scale::new(1e9, 1.0), &cfg).unwrap();
        let w0 = unscaled.denominator.region.unwrap();
        let w1 = scaled.denominator.region.unwrap();
        assert!(w1.1 - w1.0 > w0.1 - w0.0, "scaled window {w1:?} should beat unscaled {w0:?}");
    }

    #[test]
    fn static_matches_adaptive_where_valid() {
        let c = rc_ladder(10, 1e3, 1e-9);
        let cfg = RefgenConfig::default();
        let si = static_interpolation(&c, &spec(), Scale::new(1e9, 1e3), &cfg).unwrap();
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        let (lo, hi) = si.denominator.region.unwrap();
        for i in lo..=hi {
            let a = si.denormalized(PolyKind::Denominator, i).unwrap();
            let b = nf.denominator.coeffs()[i];
            let rel = ((a - b).norm() / b.norm()).to_f64();
            assert!(rel < 1e-6, "i={i}, rel={rel:.2e}");
        }
    }

    #[test]
    fn coarse_grid_leaves_holes_fine_grid_wastes_points() {
        let c = rc_ladder(20, 1e3, 1e-9);
        let cfg = RefgenConfig::default();
        // A 2-point grid at the extremes puts the windows so far apart that
        // the middle coefficients are never valid in either.
        let coarse = multi_scale_grid(&c, &spec(), 1e2, 1e16, 2, &cfg).unwrap();
        assert!(!coarse.complete(), "coarse grid should leave holes");
        // A dense grid covers it but spends far more points than adaptive.
        let dense = multi_scale_grid(&c, &spec(), 1e3, 1e15, 24, &cfg).unwrap();
        let adaptive = AdaptiveInterpolator::default()
            .polynomial(&c, &spec(), PolyKind::Denominator)
            .unwrap()
            .1;
        assert!(dense.covered_count() > coarse.covered_count());
        if dense.complete() {
            assert!(
                adaptive.total_points < dense.total_points,
                "adaptive {} vs grid {}",
                adaptive.total_points,
                dense.total_points
            );
        }
    }
}
