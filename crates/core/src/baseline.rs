//! The conventional interpolation methods the paper compares against —
//! both as raw window inspectors and as [`Solver`] implementations.
//!
//! Raw inspectors (paper-table data, garbage coefficients included):
//!
//! * [`static_interpolation`] — one interpolation at a fixed [`Scale`].
//!   With `Scale::unit()` this is the classical unit-circle method whose
//!   round-off failure Table 1a demonstrates; with a hand-picked frequency
//!   scale it reproduces Table 1b.
//! * [`multi_scale_grid`] — the §3.1 strawman: a pre-chosen grid of scale
//!   factors, merging whatever windows happen to be valid. The ablation
//!   bench compares its interpolation count and coverage against the
//!   adaptive algorithm.
//!
//! Solver wrappers ([`UnitCircleSolver`], [`StaticScalingSolver`],
//! [`MultiScaleGridSolver`]) answer the same question as the adaptive
//! algorithm through the common [`Solver`] trait, with the baselines'
//! honest semantics: a valid window (or merged grid coverage) must reach
//! coefficient 0, interior holes are a typed
//! [`RefgenError::DidNotConverge`], and the uncovered *tail* is
//! optimistically declared zero with a warning-severity
//! [`Diagnostic::CoefficientsDeclaredZero`] — these methods cannot tell a
//! true zero from a coefficient drowned in round-off, which is exactly the
//! failure mode the paper's adaptive sequence exists to fix.

use crate::adaptive::{NetworkFunction, PolyReport, RunReport};
use crate::config::RefgenConfig;
use crate::diagnostic::{Diagnostic, Observer};
use crate::error::RefgenError;
use crate::runtime::SamplingRuntime;
use crate::scaling::initial_scale;
use crate::solver::{Solution, Solver};
use crate::window::{interpolate_window, PolyKind, Sampler, Window};
use refgen_circuit::Circuit;
use refgen_mna::{MnaSystem, Scale, TransferSpec};
use refgen_numeric::{ExtComplex, ExtFloat, ExtPoly};

/// Result of a single fixed-scale interpolation of both polynomials.
#[derive(Clone, Debug)]
pub struct StaticInterpolation {
    /// Scale used.
    pub scale: Scale,
    /// Numerator window (normalized coefficients + validity).
    pub numerator: Window,
    /// Denominator window.
    pub denominator: Window,
    /// Admittance degree used for denormalization.
    pub admittance_degree: i64,
}

impl StaticInterpolation {
    /// Denormalized coefficient `p_i = p'_i/(f^i·g^{M−i})` of the selected
    /// polynomial, regardless of validity (Table 1a prints the garbage too).
    pub fn denormalized(&self, kind: PolyKind, i: usize) -> Option<ExtComplex> {
        let w = match kind {
            PolyKind::Numerator => &self.numerator,
            PolyKind::Denominator => &self.denominator,
        };
        let norm = w.normalized_at(i)?;
        let f = ExtFloat::from_f64(self.scale.f);
        let g = ExtFloat::from_f64(self.scale.g);
        let factor = f.powi(i as i64) * g.powi(self.admittance_degree - i as i64);
        Some(norm.scale_ext(ExtFloat::ONE / factor))
    }
}

/// Compiles `circuit` and rejects inputs no fixed-scale method can handle.
fn static_system(circuit: &Circuit) -> Result<(MnaSystem, usize), RefgenError> {
    let sys = MnaSystem::new(circuit)?;
    if sys.has_unscalable_elements() {
        return Err(RefgenError::Unscalable);
    }
    let n_max = sys.circuit().reactive_count();
    if n_max == 0 {
        return Err(RefgenError::NoReactiveElements);
    }
    Ok((sys, n_max))
}

/// One interpolation at a fixed scale with `K = reactive_count + 1` points.
///
/// # Errors
///
/// Propagates MNA errors; rejects unscalable circuits.
pub fn static_interpolation(
    circuit: &Circuit,
    spec: &TransferSpec,
    scale: Scale,
    config: &RefgenConfig,
) -> Result<StaticInterpolation, RefgenError> {
    let (sys, n_max) = static_system(circuit)?;
    let m = sys.admittance_degree();
    let runtime = SamplingRuntime::new(config);
    let den = interpolate_window(
        &Sampler { sys: &sys, spec, kind: PolyKind::Denominator },
        scale,
        n_max,
        m,
        None,
        config,
        &runtime,
    )?;
    let num = interpolate_window(
        &Sampler { sys: &sys, spec, kind: PolyKind::Numerator },
        scale,
        n_max,
        m,
        None,
        config,
        &runtime,
    )?;
    Ok(StaticInterpolation { scale, numerator: num, denominator: den, admittance_degree: m })
}

/// Converts one fixed-scale [`Window`] into a polynomial + report under the
/// baseline semantics described in the [module docs](self).
fn poly_from_window(
    w: &Window,
    m_adm: i64,
    n_max: usize,
    kind: PolyKind,
    observer: &mut dyn Observer,
) -> Result<(ExtPoly, PolyReport), RefgenError> {
    let mut report = PolyReport {
        kind,
        windows: Vec::new(),
        declared_zero: Vec::new(),
        diagnostics: Vec::new(),
        order_bound: n_max,
        effective_degree: None,
        total_points: 0,
        refactor_hits: 0,
    };
    report.record_window(observer, w);
    let Some((lo, hi)) = w.region else {
        if w.threshold.is_zero() {
            // Every sample was exactly zero: the polynomial is zero.
            report.emit(observer, Diagnostic::AllSamplesZero { kind });
            return Ok((ExtPoly::zero(), report));
        }
        return Err(RefgenError::DidNotConverge { missing: (0..=n_max).collect() });
    };
    if lo > 0 {
        // The low-order head never validated: no complete answer exists.
        return Err(RefgenError::DidNotConverge { missing: (0..lo).collect() });
    }
    if hi < n_max {
        report.emit(observer, Diagnostic::CoefficientsDeclaredZero { kind, lo: hi + 1, hi: n_max });
        report.declared_zero = (hi + 1..=n_max).collect();
    }
    let f = ExtFloat::from_f64(w.scale.f);
    let g = ExtFloat::from_f64(w.scale.g);
    let coeffs: Vec<ExtComplex> = (0..=n_max)
        .map(|i| {
            if i > hi {
                return ExtComplex::ZERO;
            }
            let factor = f.powi(i as i64) * g.powi(m_adm - i as i64);
            w.normalized_at(i).expect("region within window").scale_ext(ExtFloat::ONE / factor)
        })
        .collect();
    let poly = ExtPoly::new(coeffs);
    report.effective_degree = poly.degree();
    Ok((poly, report))
}

/// One polynomial at a fixed scale, denormalized with *that polynomial's*
/// admittance degree (the numerator cofactor of a current-source-driven
/// spec has one admittance factor fewer — same rule the adaptive driver
/// applies).
#[allow(clippy::too_many_arguments)]
fn static_polynomial(
    sys: &MnaSystem,
    n_max: usize,
    spec: &TransferSpec,
    scale: Scale,
    config: &RefgenConfig,
    kind: PolyKind,
    observer: &mut dyn Observer,
    runtime: &SamplingRuntime,
) -> Result<(ExtPoly, PolyReport), RefgenError> {
    let m_poly = crate::adaptive::poly_admittance_degree(sys, spec, kind)?;
    let w = interpolate_window(
        &Sampler { sys, spec, kind },
        scale,
        n_max,
        m_poly,
        None,
        config,
        runtime,
    )?;
    poly_from_window(&w, m_poly, n_max, kind, observer)
}

/// Assembles a [`Solution`] from per-polynomial fixed-scale windows.
#[allow(clippy::too_many_arguments)]
fn static_solution(
    name: &'static str,
    circuit: &Circuit,
    spec: &TransferSpec,
    scale: Scale,
    config: &RefgenConfig,
    observer: &mut dyn Observer,
    runtime: &SamplingRuntime,
) -> Result<Solution, RefgenError> {
    let (sys, n_max) = static_system(circuit)?;
    let (denominator, den_report) = static_polynomial(
        &sys,
        n_max,
        spec,
        scale,
        config,
        PolyKind::Denominator,
        observer,
        runtime,
    )?;
    let (numerator, num_report) = static_polynomial(
        &sys,
        n_max,
        spec,
        scale,
        config,
        PolyKind::Numerator,
        observer,
        runtime,
    )?;
    Ok(Solution {
        network: NetworkFunction {
            numerator,
            denominator,
            report: RunReport {
                numerator: num_report,
                denominator: den_report,
                admittance_degree: sys.admittance_degree(),
            },
        },
        method: name,
    })
}

/// `Solver::solve_polynomial` for the fixed-scale methods: one window of
/// the requested polynomial only.
fn static_solve_polynomial(
    circuit: &Circuit,
    spec: &TransferSpec,
    scale: Scale,
    config: &RefgenConfig,
    kind: PolyKind,
    observer: &mut dyn Observer,
) -> Result<(ExtPoly, PolyReport), RefgenError> {
    let (sys, n_max) = static_system(circuit)?;
    let runtime = SamplingRuntime::new(config);
    static_polynomial(&sys, n_max, spec, scale, config, kind, observer, &runtime)
}

/// Table 1a's method as a [`Solver`]: one interpolation on the raw unit
/// circle, no scaling at all. Succeeds only on circuits whose coefficient
/// spread fits a single window — the paper's §2.2 point is that IC-valued
/// circuits do not.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitCircleSolver {
    config: RefgenConfig,
}

impl UnitCircleSolver {
    /// Creates the solver.
    pub fn new(config: RefgenConfig) -> Self {
        UnitCircleSolver { config }
    }

    /// Raw window data at the unit scale (for paper-table printing).
    ///
    /// # Errors
    ///
    /// See [`static_interpolation`].
    pub fn interpolation(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
    ) -> Result<StaticInterpolation, RefgenError> {
        static_interpolation(circuit, spec, Scale::unit(), &self.config)
    }
}

impl Solver for UnitCircleSolver {
    fn name(&self) -> &'static str {
        "unit-circle"
    }

    fn solve_observed(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
    ) -> Result<Solution, RefgenError> {
        let runtime = SamplingRuntime::new(&self.config);
        self.solve_with_runtime(circuit, spec, observer, &runtime)
    }

    fn solve_with_runtime(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<Solution, RefgenError> {
        static_solution(self.name(), circuit, spec, Scale::unit(), &self.config, observer, runtime)
    }

    fn solve_polynomial(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        kind: PolyKind,
        observer: &mut dyn Observer,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        static_solve_polynomial(circuit, spec, Scale::unit(), &self.config, kind, observer)
    }
}

/// Table 1b's method as a [`Solver`]: one interpolation at a single static
/// scale — either a fixed, hand-picked [`Scale`] or the paper's initial
/// heuristic (`f = 1/mean(C)`, `g = 1/mean(G)`).
#[derive(Clone, Copy, Debug)]
pub struct StaticScalingSolver {
    scale: Option<Scale>,
    config: RefgenConfig,
}

impl StaticScalingSolver {
    /// Uses the heuristic initial scale of the circuit under solve.
    pub fn heuristic(config: RefgenConfig) -> Self {
        StaticScalingSolver { scale: None, config }
    }

    /// Uses a fixed, hand-picked scale (Table 1b's `f = 1e9`).
    pub fn with_scale(scale: Scale, config: RefgenConfig) -> Self {
        StaticScalingSolver { scale: Some(scale), config }
    }

    /// The scale this solver would use on `circuit`.
    pub fn scale_for(&self, circuit: &Circuit) -> Scale {
        self.scale.unwrap_or_else(|| initial_scale(circuit))
    }

    /// Raw window data at this solver's scale (for paper-table printing).
    ///
    /// # Errors
    ///
    /// See [`static_interpolation`].
    pub fn interpolation(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
    ) -> Result<StaticInterpolation, RefgenError> {
        static_interpolation(circuit, spec, self.scale_for(circuit), &self.config)
    }
}

impl Solver for StaticScalingSolver {
    fn name(&self) -> &'static str {
        "static-scaling"
    }

    fn solve_observed(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
    ) -> Result<Solution, RefgenError> {
        let runtime = SamplingRuntime::new(&self.config);
        self.solve_with_runtime(circuit, spec, observer, &runtime)
    }

    fn solve_with_runtime(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<Solution, RefgenError> {
        let scale = self.scale_for(circuit);
        static_solution(self.name(), circuit, spec, scale, &self.config, observer, runtime)
    }

    fn solve_polynomial(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        kind: PolyKind,
        observer: &mut dyn Observer,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        let scale = self.scale_for(circuit);
        static_solve_polynomial(circuit, spec, scale, &self.config, kind, observer)
    }
}

/// Coverage outcome of the naive multi-scale grid of §3.1.
#[derive(Clone, Debug)]
pub struct GridOutcome {
    /// Scales attempted.
    pub scales: Vec<Scale>,
    /// For each coefficient index, whether some window validated it.
    pub covered: Vec<bool>,
    /// Total interpolation points spent.
    pub total_points: usize,
    /// Merged denormalized denominator coefficients (best-quality window
    /// per index; `None` where uncovered).
    pub denominator: Vec<Option<ExtComplex>>,
}

impl GridOutcome {
    /// Number of covered coefficients.
    pub fn covered_count(&self) -> usize {
        self.covered.iter().filter(|&&c| c).count()
    }

    /// `true` when every coefficient was captured by some window.
    pub fn complete(&self) -> bool {
        self.covered.iter().all(|&c| c)
    }
}

/// Merged grid recovery of one polynomial: per-index best value + coverage
/// (per-window summaries/diagnostics are the caller's `on_window` job).
struct GridPoly {
    scales: Vec<Scale>,
    covered: Vec<bool>,
    total_points: usize,
    best: Vec<Option<(f64, ExtComplex)>>,
}

/// Runs the §3.1 grid on one polynomial, merging valid windows.
#[allow(clippy::too_many_arguments)]
fn grid_recover(
    sys: &MnaSystem,
    spec: &TransferSpec,
    kind: PolyKind,
    f_lo: f64,
    f_hi: f64,
    count: usize,
    config: &RefgenConfig,
    runtime: &SamplingRuntime,
    mut on_window: impl FnMut(&Window),
) -> Result<GridPoly, RefgenError> {
    assert!(count >= 2 && f_lo > 0.0 && f_hi > f_lo);
    let n_max = sys.circuit().reactive_count();
    let m = crate::adaptive::poly_admittance_degree(sys, spec, kind)?;
    let gs = sys.circuit().conductance_values();
    let g = 1.0 / refgen_numeric::stats::mean(&gs).expect("conductances exist");
    let sampler = Sampler { sys, spec, kind };

    let mut out = GridPoly {
        scales: Vec::with_capacity(count),
        covered: vec![false; n_max + 1],
        total_points: 0,
        best: vec![None; n_max + 1],
    };
    for i in 0..count {
        let t = i as f64 / (count - 1) as f64;
        let f = 10f64.powf(f_lo.log10() + t * (f_hi.log10() - f_lo.log10()));
        let scale = Scale::new(f, g);
        out.scales.push(scale);
        let w = interpolate_window(&sampler, scale, n_max, m, None, config, runtime)?;
        out.total_points += w.points;
        on_window(&w);
        if let Some((lo, hi)) = w.region {
            let f_ext = ExtFloat::from_f64(scale.f);
            let g_ext = ExtFloat::from_f64(scale.g);
            for idx in lo..=hi {
                out.covered[idx] = true;
                let q = w.quality(idx);
                let keep = out.best[idx].map(|(oldq, _)| q > oldq).unwrap_or(true);
                if keep {
                    let factor = f_ext.powi(idx as i64) * g_ext.powi(m - idx as i64);
                    let val =
                        w.normalized_at(idx).expect("in region").scale_ext(ExtFloat::ONE / factor);
                    out.best[idx] = Some((q, val));
                }
            }
        }
    }
    Ok(out)
}

/// Runs the §3.1 strawman on the denominator: a log-spaced grid of
/// `count` frequency scale factors between `f_lo` and `f_hi` (conductance
/// scale fixed at the mean heuristic), merging valid windows.
///
/// The paper's §3.1 point is precisely that this either wastes
/// interpolations (grid too fine) or leaves holes (grid too coarse) —
/// the ablation bench quantifies both against the adaptive algorithm.
///
/// # Errors
///
/// Propagates MNA errors.
///
/// # Panics
///
/// Panics if `count < 2` or the bounds are not positive/ordered.
pub fn multi_scale_grid(
    circuit: &Circuit,
    spec: &TransferSpec,
    f_lo: f64,
    f_hi: f64,
    count: usize,
    config: &RefgenConfig,
) -> Result<GridOutcome, RefgenError> {
    let (sys, _) = static_system(circuit)?;
    let runtime = SamplingRuntime::new(config);
    let g = grid_recover(
        &sys,
        spec,
        PolyKind::Denominator,
        f_lo,
        f_hi,
        count,
        config,
        &runtime,
        |_| {},
    )?;
    Ok(GridOutcome {
        scales: g.scales,
        covered: g.covered,
        total_points: g.total_points,
        denominator: g.best.into_iter().map(|b| b.map(|(_, v)| v)).collect(),
    })
}

/// The §3.1 naive multi-scale grid as a [`Solver`]: `count` log-spaced
/// frequency scales between `f_lo` and `f_hi`, valid windows merged by
/// quality. Same prefix-coverage semantics as the other baselines; interior
/// coverage holes (the "grid too coarse" failure) are a typed
/// [`RefgenError::DidNotConverge`].
#[derive(Clone, Copy, Debug)]
pub struct MultiScaleGridSolver {
    /// Lowest frequency scale of the grid.
    pub f_lo: f64,
    /// Highest frequency scale of the grid.
    pub f_hi: f64,
    /// Number of grid points.
    pub count: usize,
    config: RefgenConfig,
}

impl MultiScaleGridSolver {
    /// Creates the solver.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2` or the bounds are not positive/ordered
    /// (checked again at solve time).
    pub fn new(f_lo: f64, f_hi: f64, count: usize, config: RefgenConfig) -> Self {
        assert!(count >= 2 && f_lo > 0.0 && f_hi > f_lo);
        MultiScaleGridSolver { f_lo, f_hi, count, config }
    }

    /// Merged grid recovery of one polynomial, reported under the baseline
    /// prefix-coverage semantics.
    fn grid_polynomial(
        &self,
        sys: &MnaSystem,
        n_max: usize,
        spec: &TransferSpec,
        kind: PolyKind,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        let mut report = PolyReport {
            kind,
            windows: Vec::new(),
            declared_zero: Vec::new(),
            diagnostics: Vec::new(),
            order_bound: n_max,
            effective_degree: None,
            total_points: 0,
            refactor_hits: 0,
        };
        let g = grid_recover(
            sys,
            spec,
            kind,
            self.f_lo,
            self.f_hi,
            self.count,
            &self.config,
            runtime,
            |w| {
                report.record_window(observer, w);
            },
        )?;
        // Contiguous covered prefix; interior holes are a hard error.
        let prefix_end = g.covered.iter().position(|&c| !c);
        let hi = match prefix_end {
            Some(0) => {
                return Err(RefgenError::DidNotConverge {
                    missing: (0..=n_max).filter(|&i| !g.covered[i]).collect(),
                })
            }
            Some(first_hole) => {
                if g.covered[first_hole..].iter().any(|&c| c) {
                    return Err(RefgenError::DidNotConverge {
                        missing: (0..=n_max).filter(|&i| !g.covered[i]).collect(),
                    });
                }
                first_hole - 1
            }
            None => n_max,
        };
        if hi < n_max {
            report.emit(
                observer,
                Diagnostic::CoefficientsDeclaredZero { kind, lo: hi + 1, hi: n_max },
            );
            report.declared_zero = (hi + 1..=n_max).collect();
        }
        let coeffs: Vec<ExtComplex> = (0..=n_max)
            .map(|i| if i > hi { ExtComplex::ZERO } else { g.best[i].expect("covered").1 })
            .collect();
        let poly = ExtPoly::new(coeffs);
        report.effective_degree = poly.degree();
        Ok((poly, report))
    }
}

impl Solver for MultiScaleGridSolver {
    fn name(&self) -> &'static str {
        "multi-scale-grid"
    }

    fn solve_observed(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
    ) -> Result<Solution, RefgenError> {
        let runtime = SamplingRuntime::new(&self.config);
        self.solve_with_runtime(circuit, spec, observer, &runtime)
    }

    fn solve_with_runtime(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        observer: &mut dyn Observer,
        runtime: &SamplingRuntime,
    ) -> Result<Solution, RefgenError> {
        let (sys, n_max) = static_system(circuit)?;
        let m = sys.admittance_degree();
        let run = |kind: PolyKind, observer: &mut dyn Observer| {
            self.grid_polynomial(&sys, n_max, spec, kind, observer, runtime)
        };
        let (denominator, den_report) = run(PolyKind::Denominator, observer)?;
        let (numerator, num_report) = run(PolyKind::Numerator, observer)?;
        Ok(Solution {
            network: NetworkFunction {
                numerator,
                denominator,
                report: RunReport {
                    numerator: num_report,
                    denominator: den_report,
                    admittance_degree: m,
                },
            },
            method: self.name(),
        })
    }

    fn solve_polynomial(
        &self,
        circuit: &Circuit,
        spec: &TransferSpec,
        kind: PolyKind,
        observer: &mut dyn Observer,
    ) -> Result<(ExtPoly, PolyReport), RefgenError> {
        let (sys, n_max) = static_system(circuit)?;
        let runtime = SamplingRuntime::new(&self.config);
        self.grid_polynomial(&sys, n_max, spec, kind, observer, &runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveInterpolator;
    use crate::diagnostic::NullObserver;
    use refgen_circuit::library::{positive_feedback_ota, rc_ladder};

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    #[test]
    fn unit_circle_fails_on_ota() {
        // Table 1a's phenomenon: with no scaling, only the lowest OTA
        // coefficients survive.
        let c = positive_feedback_ota();
        let cfg = RefgenConfig::default();
        let si = static_interpolation(&c, &spec(), Scale::unit(), &cfg).unwrap();
        let (lo, hi) = si.denominator.region.unwrap();
        assert_eq!(lo, 0);
        assert!(hi <= 2, "unit-circle interpolation should lose p3.., got {:?}", (lo, hi));
    }

    #[test]
    fn frequency_scaling_recovers_more() {
        // Table 1b: a 1e9-ish frequency scale widens the valid window.
        let c = positive_feedback_ota();
        let cfg = RefgenConfig::default();
        let unscaled = static_interpolation(&c, &spec(), Scale::unit(), &cfg).unwrap();
        let scaled = static_interpolation(&c, &spec(), Scale::new(1e9, 1.0), &cfg).unwrap();
        let w0 = unscaled.denominator.region.unwrap();
        let w1 = scaled.denominator.region.unwrap();
        assert!(w1.1 - w1.0 > w0.1 - w0.0, "scaled window {w1:?} should beat unscaled {w0:?}");
    }

    #[test]
    fn static_matches_adaptive_where_valid() {
        let c = rc_ladder(10, 1e3, 1e-9);
        let cfg = RefgenConfig::default();
        let si = static_interpolation(&c, &spec(), Scale::new(1e9, 1e3), &cfg).unwrap();
        let nf = AdaptiveInterpolator::default().network_function(&c, &spec()).unwrap();
        let (lo, hi) = si.denominator.region.unwrap();
        for i in lo..=hi {
            let a = si.denormalized(PolyKind::Denominator, i).unwrap();
            let b = nf.denominator.coeffs()[i];
            let rel = ((a - b).norm() / b.norm()).to_f64();
            assert!(rel < 1e-6, "i={i}, rel={rel:.2e}");
        }
    }

    #[test]
    fn coarse_grid_leaves_holes_fine_grid_wastes_points() {
        let c = rc_ladder(20, 1e3, 1e-9);
        let cfg = RefgenConfig::default();
        // A 2-point grid at the extremes puts the windows so far apart that
        // the middle coefficients are never valid in either.
        let coarse = multi_scale_grid(&c, &spec(), 1e2, 1e16, 2, &cfg).unwrap();
        assert!(!coarse.complete(), "coarse grid should leave holes");
        // A dense grid covers it but spends far more points than adaptive.
        let dense = multi_scale_grid(&c, &spec(), 1e3, 1e15, 24, &cfg).unwrap();
        let adaptive = AdaptiveInterpolator::default()
            .polynomial(&c, &spec(), PolyKind::Denominator)
            .unwrap()
            .1;
        assert!(dense.covered_count() > coarse.covered_count());
        if dense.complete() {
            assert!(
                adaptive.total_points < dense.total_points,
                "adaptive {} vs grid {}",
                adaptive.total_points,
                dense.total_points
            );
        }
    }

    #[test]
    fn static_solver_solves_small_ladder() {
        // The heuristic scale normalizes a uniform ladder's coefficients to
        // O(1): one window covers everything and the Solution matches the
        // adaptive one.
        let c = rc_ladder(6, 1e3, 1e-9);
        let cfg = RefgenConfig::default();
        let s = StaticScalingSolver::heuristic(cfg).solve(&c, &spec()).unwrap();
        let a = AdaptiveInterpolator::new(cfg).solve(&c, &spec()).unwrap();
        assert_eq!(s.network.denominator.degree(), Some(6));
        for (x, y) in s.network.denominator.coeffs().iter().zip(a.network.denominator.coeffs()) {
            let rel = ((*x - *y).norm() / y.norm()).to_f64();
            assert!(rel < 1e-6, "rel {rel:.2e}");
        }
    }

    #[test]
    fn unit_circle_solver_truncates_with_diagnostic() {
        // On the OTA the unit-circle window reaches only p2: the solver
        // declares the tail zero and says so in a typed event.
        let c = positive_feedback_ota();
        let s = UnitCircleSolver::new(RefgenConfig::default()).solve(&c, &spec()).unwrap();
        let den = &s.network.report.denominator;
        assert!(!den.declared_zero.is_empty());
        assert!(den
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::CoefficientsDeclaredZero { .. })));
        // The truncated degree undershoots the adaptive truth (9).
        assert!(s.network.denominator.degree().unwrap() < 9);
    }

    #[test]
    fn grid_solver_covers_what_the_free_function_covers() {
        let c = rc_ladder(12, 1e3, 1e-9);
        let cfg = RefgenConfig::default();
        let solver = MultiScaleGridSolver::new(1e3, 1e15, 16, cfg);
        let s = solver.solve(&c, &spec()).unwrap();
        assert_eq!(s.method, "multi-scale-grid");
        assert_eq!(s.network.denominator.degree(), Some(12));
        let truth = AdaptiveInterpolator::new(cfg).solve(&c, &spec()).unwrap();
        for (x, y) in s.network.denominator.coeffs().iter().zip(truth.network.denominator.coeffs())
        {
            let rel = ((*x - *y).norm() / y.norm()).to_f64();
            assert!(rel < 1e-5, "rel {rel:.2e}");
        }
    }

    #[test]
    fn baseline_solvers_match_adaptive_on_current_source_input() {
        // Current-source input: the numerator cofactor has admittance
        // degree M−1, and the baselines must denormalize with that same
        // per-polynomial degree — otherwise every numerator coefficient
        // (hence the whole transfer function) is off by a factor g.
        let mut c = refgen_circuit::Circuit::new();
        c.add_isource("IIN", "0", "in", 1e-3).unwrap();
        c.add_resistor("R1", "in", "0", 2e3).unwrap();
        c.add_capacitor("C1", "in", "0", 1e-9).unwrap();
        c.add_resistor("R2", "in", "out", 5e3).unwrap();
        c.add_capacitor("C2", "out", "0", 0.2e-9).unwrap();
        c.add_resistor("R3", "out", "0", 10e3).unwrap();
        let spec = TransferSpec::voltage_gain("IIN", "out");
        let cfg = RefgenConfig::default();
        let truth = AdaptiveInterpolator::new(cfg).solve(&c, &spec).unwrap();
        let solvers: [&dyn Solver; 2] =
            [&StaticScalingSolver::heuristic(cfg), &MultiScaleGridSolver::new(1e6, 1e12, 8, cfg)];
        for solver in solvers {
            let got = solver.solve(&c, &spec).unwrap();
            for f in [1e3, 1e5, 1e7] {
                let a = truth.network.response_at_hz(f);
                let b = got.network.response_at_hz(f);
                assert!((a - b).abs() / a.abs() < 1e-6, "{} at {f} Hz: {a} vs {b}", got.method);
            }
        }
    }

    #[test]
    fn solve_polynomial_overrides_spend_one_polynomial_only() {
        // The overrides must not silently fall back to a full two-sided
        // solve: a single-polynomial recovery costs exactly the windows of
        // that polynomial (half the full solve for the static methods).
        let c = rc_ladder(6, 1e3, 1e-9);
        let cfg = RefgenConfig::default();
        for solver in [
            &StaticScalingSolver::heuristic(cfg) as &dyn Solver,
            &MultiScaleGridSolver::new(1e3, 1e15, 8, cfg),
        ] {
            let full = solver.solve(&c, &spec()).unwrap();
            let (_, den_only) = solver
                .solve_polynomial(&c, &spec(), PolyKind::Denominator, &mut NullObserver)
                .unwrap();
            assert_eq!(
                den_only.total_points,
                full.network.report.denominator.total_points,
                "{}",
                solver.name()
            );
            assert!(den_only.total_points < full.total_points(), "{}", solver.name());
        }
    }

    #[test]
    fn grid_solver_reports_holes_as_typed_error() {
        let c = rc_ladder(20, 1e3, 1e-9);
        let solver = MultiScaleGridSolver::new(1e2, 1e16, 2, RefgenConfig::default());
        match solver.solve(&c, &spec()) {
            Err(RefgenError::DidNotConverge { missing }) => assert!(!missing.is_empty()),
            other => panic!("expected DidNotConverge, got {:?}", other.map(|_| "ok")),
        }
    }
}
