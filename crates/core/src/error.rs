//! Error type for the interpolation engine.

use refgen_mna::MnaError;
use std::fmt;

/// Errors from numerical reference generation.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// solver backends can add failure modes.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RefgenError {
    /// MNA construction or evaluation failed.
    Mna(MnaError),
    /// A [`Session`](crate::Session) was asked to solve without a
    /// [`TransferSpec`](refgen_mna::TransferSpec).
    SpecMissing,
    /// The circuit contains elements simultaneous conductance scaling
    /// cannot handle uniformly (inductors, CCVS). Raised only by the
    /// fixed-scale [baselines](crate::baseline); the adaptive driver
    /// falls back to frequency-only scaling instead.
    Unscalable,
    /// The circuit has no capacitors: the network function is a constant and
    /// needs no interpolation (callers can evaluate at any single point).
    NoReactiveElements,
    /// The adaptive loop exhausted `max_interpolations` with coefficients
    /// still missing.
    DidNotConverge {
        /// Indices of coefficients never captured by a valid window.
        missing: Vec<usize>,
    },
    /// A window gap could not be repaired by eq. (16) bisection.
    Gap {
        /// Lowest missing coefficient index.
        lo: usize,
        /// Highest missing coefficient index.
        hi: usize,
    },
    /// A fleet session was asked to solve zero variants (an empty explicit
    /// circuit list, or a [`VariantSet`](refgen_circuit::perturb::VariantSet)
    /// generating none).
    EmptyFleet,
    /// A sweep front end was handed an empty frequency grid.
    EmptyGrid,
    /// A variant's solve job panicked and was quarantined under
    /// [`FaultPolicy::Contain`](crate::FaultPolicy::Contain); the payload
    /// message is preserved. Never returned under `FailFast`, where the
    /// panic propagates.
    VariantPanicked {
        /// The panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for RefgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefgenError::Mna(e) => write!(f, "{e}"),
            RefgenError::SpecMissing => {
                write!(f, "session has no transfer spec; call Session::spec before solving")
            }
            RefgenError::Unscalable => write!(
                f,
                "circuit contains inductors or CCVS elements, which break uniform \
                 admittance scaling (transform them first)"
            ),
            RefgenError::NoReactiveElements => {
                write!(f, "circuit has no capacitors; the network function is constant")
            }
            RefgenError::DidNotConverge { missing } => write!(
                f,
                "interpolation finished with {} coefficients never validated by any window",
                missing.len()
            ),
            RefgenError::Gap { lo, hi } => {
                write!(f, "unrepairable window gap over coefficients {lo}..={hi}")
            }
            RefgenError::EmptyFleet => {
                write!(f, "fleet session has zero variants; nothing to solve")
            }
            RefgenError::EmptyGrid => {
                write!(f, "sweep was handed an empty frequency grid; nothing to evaluate")
            }
            RefgenError::VariantPanicked { message } => {
                write!(f, "variant solve panicked (quarantined): {message}")
            }
        }
    }
}

impl std::error::Error for RefgenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RefgenError::Mna(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MnaError> for RefgenError {
    fn from(e: MnaError) -> Self {
        RefgenError::Mna(e)
    }
}
