//! Shared sampling resources for one solve — or one fleet of solves.
//!
//! Two costs of the plan/execute sampling engine are worth paying **once**
//! rather than per window:
//!
//! * **worker threads** — under
//!   [`ExecutorKind::Pool`](refgen_exec::ExecutorKind::Pool) the runtime
//!   owns a persistent `refgen_exec::WorkerPool`, so the per-window
//!   scoped-thread spawn/join (~100 µs at 4 workers) disappears from the
//!   steady state;
//! * **pivot searches** — the runtime's [`PlanCache`] shares recorded
//!   pivot orders between window plans built at nearby scales, so a
//!   verify re-interpolation (±0.2 decades) and every same-topology
//!   variant of a batch session replay one recorded order instead of
//!   probing their own.
//!
//! A [`SamplingRuntime`] is created per [`Session::solve`](crate::Session)
//! by default, which already amortizes across every window of both
//! polynomials. A [`BatchSession`](crate::BatchSession) creates **one**
//! runtime for its whole fleet — that is the "one pivot search per
//! topology, threads spawned once" configuration the batch engine exists
//! for. Sharing never changes results: executors collect in index order
//! and pivot-order replay is value-exact, so solver output is
//! bit-identical with or without a shared runtime, at any thread count,
//! under either executor kind.

use crate::config::RefgenConfig;
use refgen_exec::Executor;
use refgen_mna::PlanCache;
use std::sync::Arc;

/// Executor + plan cache shared by every sampling batch of one solve (or
/// one batch session). See the [module docs](self).
///
/// The plan cache sits behind an [`Arc`] so a fleet session can hand each
/// variant worker its own [`SamplingRuntime::variant_worker`] runtime —
/// single-threaded inside, but planning through the **same** cache as
/// every other worker.
#[derive(Debug)]
pub struct SamplingRuntime {
    executor: Executor,
    plans: Arc<PlanCache>,
}

impl SamplingRuntime {
    /// Builds the runtime a configuration asks for: an
    /// [`Executor`] of `config.executor` kind with `config.threads`
    /// workers (pool threads spawn here, once) and an empty plan cache.
    pub fn new(config: &RefgenConfig) -> SamplingRuntime {
        SamplingRuntime {
            executor: Executor::new(config.executor, config.threads),
            plans: Arc::new(PlanCache::new()),
        }
    }

    /// A per-variant worker runtime: a single-threaded scoped executor
    /// (the variant-major fleet path parallelizes *across* variants, so
    /// each variant's own sampling must not nest threads) sharing **this**
    /// runtime's plan cache. Pivot searches, shared-plan hits, and
    /// compiled programs all accumulate on the parent.
    pub fn variant_worker(&self) -> SamplingRuntime {
        SamplingRuntime { executor: Executor::scoped(1), plans: Arc::clone(&self.plans) }
    }

    /// The executor sampling batches fan out on.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The shared pivot-order cache window plans build through.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Probe factorizations (full pivot searches) performed so far — the
    /// quantity plan sharing drives toward one per topology.
    pub fn pivot_searches(&self) -> usize {
        self.plans.pivot_searches()
    }

    /// Plan builds that reused a recorded pivot order instead of probing.
    pub fn shared_plan_hits(&self) -> usize {
        self.plans.shared_hits()
    }

    /// Compiled symbolic kernels (`FactorProgram`s) built through the
    /// plan cache so far — like pivot searches, plan sharing drives this
    /// toward one per topology per scale region: a whole fleet of
    /// same-topology variants compiles once.
    pub fn programs_compiled(&self) -> usize {
        self.plans.programs_compiled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RefgenConfig;
    use refgen_exec::ExecutorKind;

    #[test]
    fn runtime_reflects_config() {
        let scoped = SamplingRuntime::new(
            &RefgenConfig::builder().threads(3).executor(ExecutorKind::Scoped).build(),
        );
        assert!(!scoped.executor().is_pool());
        assert_eq!(scoped.executor().threads(), 3);
        assert_eq!(scoped.pivot_searches(), 0);

        let pooled = SamplingRuntime::new(
            &RefgenConfig::builder().threads(2).executor(ExecutorKind::Pool).build(),
        );
        assert!(pooled.executor().is_pool());
        assert_eq!(pooled.executor().threads(), 2);
    }

    #[test]
    fn variant_worker_is_single_threaded_and_shares_plans() {
        let parent = SamplingRuntime::new(
            &RefgenConfig::builder().threads(4).executor(ExecutorKind::Pool).build(),
        );
        let worker = parent.variant_worker();
        assert!(!worker.executor().is_pool());
        assert_eq!(worker.executor().threads(), 1);
        // Same cache object, not a copy.
        assert!(std::ptr::eq(parent.plan_cache() as *const _, worker.plan_cache() as *const _));
    }
}
