//! Time-domain evaluation of recovered network functions.
//!
//! Once the exact coefficients are available (the whole point of reference
//! generation), the transfer function factors into partial fractions and
//! impulse/step responses come for free:
//!
//! ```text
//! H(s) = d + Σ_k  r_k / (s − p_k),     r_k = N(p_k) / D′(p_k)
//! h(t) = Σ_k r_k·e^{p_k·t}                         (plus d·δ(t))
//! y_step(t) = d + Σ_k (r_k/p_k)·(e^{p_k·t} − 1)
//! ```
//!
//! This is a downstream capability the paper's references enable (a SPICE
//! transient would need thousands of solves; here it is a closed form).

use crate::adaptive::NetworkFunction;
use refgen_numeric::Complex;
use std::fmt;

/// Errors from partial-fraction expansion.
#[derive(Clone, Debug, PartialEq)]
pub enum TimeDomainError {
    /// Two poles are (numerically) coincident; simple-pole residues would
    /// be meaningless.
    RepeatedPoles {
        /// The offending pole value.
        pole: Complex,
    },
    /// `deg N > deg D`: not a proper rational function.
    Improper,
    /// A pole at (or numerically at) the origin: the step response diverges.
    PoleAtOrigin,
    /// The denominator is zero or constant.
    NoDynamics,
}

impl fmt::Display for TimeDomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeDomainError::RepeatedPoles { pole } => {
                write!(f, "repeated pole near {pole}; simple-pole expansion unavailable")
            }
            TimeDomainError::Improper => write!(f, "numerator degree exceeds denominator"),
            TimeDomainError::PoleAtOrigin => write!(f, "pole at the origin"),
            TimeDomainError::NoDynamics => write!(f, "denominator has no roots"),
        }
    }
}

impl std::error::Error for TimeDomainError {}

/// A simple-pole partial-fraction expansion of `H(s)`.
#[derive(Clone, Debug)]
pub struct PartialFractions {
    /// Direct (constant) term `d` — nonzero only when `deg N = deg D`.
    pub direct: Complex,
    /// `(pole, residue)` pairs.
    pub terms: Vec<(Complex, Complex)>,
}

impl PartialFractions {
    /// Evaluates `H(s)` from the expansion (round-trip check).
    pub fn eval(&self, s: Complex) -> Complex {
        let mut acc = self.direct;
        for &(p, r) in &self.terms {
            acc += r / (s - p);
        }
        acc
    }

    /// Impulse response `h(t) = Σ r_k·e^{p_k t}` for `t ≥ 0` (the `d·δ(t)`
    /// part, if any, is not representable pointwise and is omitted).
    pub fn impulse_response(&self, t: f64) -> f64 {
        self.terms.iter().map(|&(p, r)| (r * (p.scale(t)).exp()).re).sum()
    }

    /// Step response `y(t) = d + Σ (r_k/p_k)(e^{p_k t} − 1)` for `t ≥ 0`.
    pub fn step_response(&self, t: f64) -> f64 {
        let mut acc = self.direct.re;
        for &(p, r) in &self.terms {
            acc += ((r / p) * ((p.scale(t)).exp() - Complex::ONE)).re;
        }
        acc
    }

    /// The steady-state (t → ∞) step value, assuming all poles are stable.
    pub fn final_value(&self) -> f64 {
        let mut acc = self.direct.re;
        for &(p, r) in &self.terms {
            acc += (-(r / p)).re;
        }
        acc
    }
}

impl NetworkFunction {
    /// Expands `H(s)` into simple-pole partial fractions.
    ///
    /// # Errors
    ///
    /// See [`TimeDomainError`]: requires a proper rational function with
    /// distinct nonzero poles in the f64-representable range.
    pub fn partial_fractions(&self) -> Result<PartialFractions, TimeDomainError> {
        let deg_d = self.denominator.degree().ok_or(TimeDomainError::NoDynamics)?;
        if deg_d == 0 {
            return Err(TimeDomainError::NoDynamics);
        }
        let deg_n = self.numerator.degree().unwrap_or(0);
        if deg_n > deg_d {
            return Err(TimeDomainError::Improper);
        }
        let poles: Vec<Complex> =
            self.denominator.roots(1e-13, 600).iter().map(|p| p.to_complex()).collect();
        // Distinctness / origin checks.
        let scale = poles.iter().map(|p| p.abs()).fold(0.0f64, f64::max);
        for (i, &p) in poles.iter().enumerate() {
            if p.abs() < 1e-12 * scale.max(1.0) {
                return Err(TimeDomainError::PoleAtOrigin);
            }
            for &q in &poles[..i] {
                // A double root splits under the Aberth iteration by about
                // √eps of its magnitude (≈ 1e-8 relative) — the residues
                // `N(p)/D′(p)` at such a near-coincident pair are huge and
                // cancel catastrophically long before the poles touch
                // exactly. Cluster detection therefore triggers well above
                // the split scale, at 1e-6 of the pole magnitude.
                if (p - q).abs() < 1e-6 * scale {
                    return Err(TimeDomainError::RepeatedPoles { pole: p });
                }
            }
        }
        let dprime = self.denominator.derivative();
        let mut terms = Vec::with_capacity(poles.len());
        for &p in &poles {
            let n = self.numerator.eval(p);
            let dp = dprime.eval(p);
            terms.push((p, (n / dp).to_complex()));
        }
        let direct = if deg_n == deg_d {
            (*self.numerator.coeffs().last().expect("deg checked")
                / *self.denominator.coeffs().last().expect("deg checked"))
            .to_complex()
        } else {
            Complex::ZERO
        };
        Ok(PartialFractions { direct, terms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveInterpolator;
    use refgen_circuit::library::rc_ladder;
    use refgen_circuit::Circuit;
    use refgen_mna::TransferSpec;

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    #[test]
    fn single_rc_step_is_exponential() {
        let (r, c) = (1e3, 1e-9);
        let tau = r * c;
        let circuit = rc_ladder(1, r, c);
        let nf = AdaptiveInterpolator::default().network_function(&circuit, &spec()).unwrap();
        let pf = nf.partial_fractions().unwrap();
        assert_eq!(pf.terms.len(), 1);
        for t in [0.0, 0.5 * tau, tau, 3.0 * tau, 10.0 * tau] {
            let want = 1.0 - (-t / tau).exp();
            let got = pf.step_response(t);
            assert!((got - want).abs() < 1e-9, "t={t}: {got} vs {want}");
        }
        assert!((pf.final_value() - 1.0).abs() < 1e-9);
        // Impulse response h(t) = (1/τ)e^{-t/τ}.
        let h0 = pf.impulse_response(0.0);
        assert!((h0 - 1.0 / tau).abs() / (1.0 / tau) < 1e-9);
    }

    #[test]
    fn expansion_round_trips_transfer_function() {
        let circuit = rc_ladder(6, 2e3, 0.5e-9);
        let nf = AdaptiveInterpolator::default().network_function(&circuit, &spec()).unwrap();
        let pf = nf.partial_fractions().unwrap();
        for f in [1e3, 1e5, 1e6, 1e7] {
            let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
            let direct = nf.eval(s);
            let via_pf = pf.eval(s);
            // Residues inherit the Aberth root accuracy (~1e-9 relative on
            // the poles), which amplifies in the deep stop band.
            assert!(
                (direct - via_pf).abs() / direct.abs() < 1e-4,
                "at {f} Hz: {direct} vs {via_pf}"
            );
        }
    }

    #[test]
    fn rlc_step_rings_and_settles() {
        // Underdamped series RLC: Q ≈ 10 → strong overshoot, settles to 1.
        let (r, l, cap) = (10.0, 1e-6, 1e-9);
        let mut circuit = Circuit::new();
        circuit.add_vsource("VIN", "in", "0", 1.0).unwrap();
        circuit.add_resistor("R1", "in", "a", r).unwrap();
        circuit.add_inductor("L1", "a", "out", l).unwrap();
        circuit.add_capacitor("C1", "out", "0", cap).unwrap();
        let nf = AdaptiveInterpolator::default().network_function(&circuit, &spec()).unwrap();
        let pf = nf.partial_fractions().unwrap();
        let w0 = 1.0 / (l * cap).sqrt();
        // Peak of a 2nd-order step ≈ 1 + exp(−πζ/√(1−ζ²)), ζ = 1/(2Q).
        let q = (l / cap).sqrt() / r;
        let zeta = 1.0 / (2.0 * q);
        let overshoot = (-std::f64::consts::PI * zeta / (1.0 - zeta * zeta).sqrt()).exp();
        let t_peak = std::f64::consts::PI / (w0 * (1.0 - zeta * zeta).sqrt());
        let got = pf.step_response(t_peak);
        assert!((got - (1.0 + overshoot)).abs() < 1e-6, "peak {got} vs {}", 1.0 + overshoot);
        assert!((pf.step_response(1e3 / w0) - 1.0).abs() < 1e-9, "settles to 1");
        assert!((pf.final_value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn critically_damped_rlc_is_typed_repeated_pole_error() {
        // Series RLC at critical damping R = 2√(L/C): D(s) has an exact
        // double root at −R/(2L). The Aberth solver separates it by only
        // ~√eps, so simple-pole residues would be enormous and cancelling;
        // the expansion must refuse with the typed error instead.
        let (l, cap) = (1e-6f64, 1e-9f64);
        let r = 2.0 * (l / cap).sqrt(); // ≈ 63.246 Ω
        let mut circuit = Circuit::new();
        circuit.add_vsource("VIN", "in", "0", 1.0).unwrap();
        circuit.add_resistor("R1", "in", "a", r).unwrap();
        circuit.add_inductor("L1", "a", "out", l).unwrap();
        circuit.add_capacitor("C1", "out", "0", cap).unwrap();
        let nf = AdaptiveInterpolator::default().network_function(&circuit, &spec()).unwrap();
        match nf.partial_fractions() {
            Err(TimeDomainError::RepeatedPoles { pole }) => {
                let want = -r / (2.0 * l);
                assert!(
                    (pole.re - want).abs() < 1e-3 * want.abs() && pole.im.abs() < 1e-3 * want.abs(),
                    "clustered pole {pole} should sit near the double root {want:e}"
                );
            }
            other => panic!("expected RepeatedPoles, got {other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        // Band-pass (series C): H has a zero at 0 but also... a pole at
        // origin never occurs for RC dividers; construct an integrator-like
        // circuit: C-only divider → D(s) = s·(C1+C2)·…, pole at origin.
        let mut circuit = Circuit::new();
        circuit.add_vsource("VIN", "in", "0", 1.0).unwrap();
        circuit.add_capacitor("C1", "in", "out", 1e-9).unwrap();
        circuit.add_capacitor("C2", "out", "0", 1e-9).unwrap();
        // A resistor keeps the node from floating at DC… intentionally
        // omitted: the capacitive divider has H = C1/(C1+C2) with
        // denominator s·(C1+C2) — degree 1 with root at 0 after
        // normalization? The MNA determinant is s·(C1+C2)·(V-branch
        // factors), numerator s·C1: both have the s factor, and the
        // interpolation recovers them faithfully; partial fractions must
        // then reject the origin pole.
        let nf = AdaptiveInterpolator::default().network_function(&circuit, &spec()).unwrap();
        match nf.partial_fractions() {
            Err(TimeDomainError::PoleAtOrigin) => {}
            other => panic!("expected PoleAtOrigin, got {other:?}"),
        }
    }
}
