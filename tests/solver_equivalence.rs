//! Property test: solver equivalence through the `Solver` trait object.
//!
//! On RC ladders small enough that one well-scaled window covers every
//! coefficient, the adaptive solver and the single-static-scaling baseline
//! must produce the same network function (within interpolation tolerance).
//! Both run as `&dyn Solver` — the equivalence is a property of the trait
//! contract, not of any concrete method.

use proptest::prelude::*;
use refgen::prelude::*;

fn spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

fn agree(a: &NetworkFunction, b: &NetworkFunction) -> Result<(), String> {
    for (name, pa, pb) in
        [("numerator", &a.numerator, &b.numerator), ("denominator", &a.denominator, &b.denominator)]
    {
        if pa.degree() != pb.degree() {
            return Err(format!("{name} degree {:?} vs {:?}", pa.degree(), pb.degree()));
        }
        for (i, (x, y)) in pa.coeffs().iter().zip(pb.coeffs()).enumerate() {
            if y.is_zero() {
                if !x.is_zero() {
                    return Err(format!("{name} coeff {i}: {x:?} vs exact zero"));
                }
                continue;
            }
            let rel = ((*x - *y).norm() / y.norm()).to_f64();
            if rel > 1e-6 {
                return Err(format!("{name} coeff {i}: rel {rel:.2e}"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Uniform ladders across element-value decades: the heuristic static
    /// scale normalizes all coefficients to O(1), so the baseline sees the
    /// whole range and must match the adaptive truth.
    #[test]
    fn adaptive_and_static_scaling_agree_on_small_ladders(
        n in 1usize..8,
        r_exp in 1.0f64..5.0,
        c_exp in -12.0f64..-8.0,
    ) {
        let circuit = library::rc_ladder(n, 10f64.powf(r_exp), 10f64.powf(c_exp));
        let adaptive = AdaptiveInterpolator::default();
        let baseline = StaticScalingSolver::heuristic(RefgenConfig::default());
        let solvers: [&dyn Solver; 2] = [&adaptive, &baseline];
        let mut solutions = Vec::new();
        for solver in solvers {
            let s = Session::for_circuit(&circuit)
                .spec(spec())
                .solver(solver)
                .solve()
                .expect("small ladders are within every method's reach");
            solutions.push(s);
        }
        prop_assert_eq!(solutions[0].method, "adaptive");
        prop_assert_eq!(solutions[1].method, "static-scaling");
        if let Err(msg) = agree(&solutions[0].network, &solutions[1].network) {
            prop_assert!(false, "n={}, r=1e{:.1}, c=1e{:.1}: {}", n, r_exp, c_exp, msg);
        }
    }

    /// Mildly graded ladders (geometrically drifting R and C) stay within
    /// one window of the heuristic scale too.
    #[test]
    fn adaptive_and_static_scaling_agree_on_graded_ladders(
        n in 2usize..7,
        rho in 0.8f64..1.25,
        gamma in 0.8f64..1.25,
    ) {
        let circuit = library::graded_rc_ladder(n, 1e3, 1e-9, rho, gamma);
        let truth = Session::for_circuit(&circuit).spec(spec()).solve().expect("recovers");
        let base = Session::for_circuit(&circuit)
            .spec(spec())
            .solver(StaticScalingSolver::heuristic(RefgenConfig::default()))
            .solve()
            .expect("one window covers a mildly graded ladder");
        if let Err(msg) = agree(&truth.network, &base.network) {
            prop_assert!(false, "n={}, rho={:.2}, gamma={:.2}: {}", n, rho, gamma, msg);
        }
    }
}
