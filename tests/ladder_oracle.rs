//! Independent high-precision oracle: RC-ladder denominator coefficients
//! from a double-double ABCD chain recurrence, compared against the
//! adaptive interpolation engine.
//!
//! The recurrence walks the ladder from the output port:
//!
//! ```text
//! v_k(s) = v_{k-1}(s) + R_k·i_{k-1}(s)
//! i_k(s) = i_{k-1}(s) + s·C_k·v_k(s)
//! ```
//!
//! with `v_0 = 1`, `i_0 = s·C_out·v_0`… — every step exact to ~31 digits in
//! [`Dd`], giving reference coefficients entirely outside the MNA/DFT code
//! paths.

use refgen::circuit::library::{graded_rc_ladder, rc_ladder};
use refgen::numeric::Dd;
use refgen::prelude::*;

/// Denominator coefficients (ascending powers) of `v(in)/v(out)` for a
/// ladder with per-section values `(r[k], c[k])`, ordered from the *input*
/// side as built by the library generators.
fn ladder_denominator_dd(rs: &[f64], cs: &[f64]) -> Vec<Dd> {
    assert_eq!(rs.len(), cs.len());
    let n = rs.len();
    // Walk from the output end: section n-1 is nearest the output.
    let mut v: Vec<Dd> = vec![Dd::ONE];
    let mut i: Vec<Dd> = Vec::new();
    for k in (0..n).rev() {
        // Shunt capacitor C_k sits at the node we are currently at.
        // i += s·C_k·v
        let ck = Dd::from(cs[k]);
        let mut i_new = vec![Dd::ZERO; (v.len() + 1).max(i.len())];
        for (p, &x) in i.iter().enumerate() {
            i_new[p] += x;
        }
        for (p, &x) in v.iter().enumerate() {
            i_new[p + 1] += x * ck;
        }
        i = i_new;
        // Series resistor R_k toward the source: v += R_k·i
        let rk = Dd::from(rs[k]);
        let mut v_new = vec![Dd::ZERO; v.len().max(i.len())];
        for (p, &x) in v.iter().enumerate() {
            v_new[p] += x;
        }
        for (p, &x) in i.iter().enumerate() {
            v_new[p] += x * rk;
        }
        v = v_new;
    }
    v
}

fn check_ladder(rs: &[f64], cs: &[f64], circuit: Circuit, tol: f64) {
    let spec = TransferSpec::voltage_gain("VIN", "out");
    let nf = Session::for_circuit(&circuit).spec(spec).solve().expect("ladder recovers").network;
    let oracle = ladder_denominator_dd(rs, cs);
    let got = nf.denominator.coeffs();
    assert_eq!(got.len(), oracle.len(), "degree mismatch");
    // The MNA determinant differs from the port polynomial by a global
    // constant: compare ratios to p0 (oracle has p0 = 1).
    let p0 = got[0];
    for (k, (g, w)) in got.iter().zip(&oracle).enumerate() {
        let ratio = (*g / p0).re().to_f64();
        let want = w.to_f64();
        let rel = (ratio - want).abs() / want.abs();
        assert!(rel < tol, "coeff {k}: got {ratio:.6e}, oracle {want:.6e}, rel {rel:.1e}");
    }
}

#[test]
fn uniform_ladders_match_oracle() {
    for n in [1usize, 2, 3, 5, 8, 13, 21] {
        let (r, c) = (1e3, 1e-9);
        check_ladder(&vec![r; n], &vec![c; n], rc_ladder(n, r, c), 1e-6);
    }
}

#[test]
fn graded_ladders_match_oracle() {
    // Geometrically drifting values: section k has R·ρ^k, C·γ^k (matching
    // graded_rc_ladder, whose first section is R·ρ, C·γ).
    for (n, rho, gamma) in [(6usize, 2.0, 0.5), (10, 1.5, 0.7), (8, 0.6, 3.0)] {
        let (r0, c0) = (1e3, 1e-12);
        let mut rs = Vec::new();
        let mut cs = Vec::new();
        let mut r = r0;
        let mut c = c0;
        for _ in 0..n {
            rs.push(r);
            cs.push(c);
            r *= rho;
            c *= gamma;
        }
        check_ladder(&rs, &cs, graded_rc_ladder(n, r0, c0, rho, gamma), 1e-5);
    }
}

#[test]
fn wide_value_spread_ladder() {
    // Sections spanning 3 decades of R and C: coefficient spread grows
    // fast, forcing several adaptive windows while the oracle stays exact.
    let rs = [1e2, 1e3, 1e4, 1e5, 1e4, 1e3, 1e2];
    let cs = [1e-12, 1e-11, 1e-10, 1e-9, 1e-10, 1e-11, 1e-12];
    let mut circuit = Circuit::new();
    circuit.add_vsource("VIN", "in", "0", 1.0).expect("fresh");
    let mut prev = "in".to_string();
    for k in 0..rs.len() {
        let node = if k + 1 == rs.len() { "out".to_string() } else { format!("l{}", k + 1) };
        circuit.add_resistor(&format!("R{}", k + 1), &prev, &node, rs[k]).expect("unique");
        circuit.add_capacitor(&format!("C{}", k + 1), &node, "0", cs[k]).expect("unique");
        prev = node;
    }
    check_ladder(&rs, &cs, circuit, 1e-5);
}

#[test]
fn oracle_self_check_first_section() {
    // n = 1: D(s) = 1 + sRC.
    let d = ladder_denominator_dd(&[2e3], &[0.5e-9]);
    assert_eq!(d.len(), 2);
    assert!((d[0].to_f64() - 1.0).abs() < 1e-30);
    assert!((d[1].to_f64() - 1e-6).abs() < 1e-20);
}
