* refgen .SUBCKT building-block library
.subckt opamp inp inn out gm=1m rp=100meg cp=159p
RIN inp inn 10meg
G1 0 p inp inn {gm}
RP p 0 {rp}
CP p 0 {cp}
EOUT out 0 p 0 1
.ends opamp
.subckt sallen_key in out r1=10k r2=10k c1=4n c2=390p
R1 in a {r1}
R2 a b {r2}
C1 a out {c1}
C2 b 0 {c2}
XOP b out out opamp
.ends sallen_key
.subckt rc_lowpass in out r=1k c=1n
R1 in n1 {r}
C1 n1 0 {c}
R2 n1 n2 {r}
C2 n2 0 {c}
R3 n2 n3 {r}
C3 n3 0 {c}
R4 n3 out {r}
C4 out 0 {c}
.ends rc_lowpass
.subckt rlc_lowpass in out rs=50 rl=50 c1=31.83n l2=159.15u c3=31.83n
RS in a {rs}
C1 a 0 {c1}
L2 a out {l2}
C3 out 0 {c3}
RL out 0 {rl}
.ends rlc_lowpass
* Sallen-Key biquad on the opamp macromodel (f0 ~ 12.7 kHz)
VIN in 0 AC 1
X1 in out sallen_key
RL out 0 1meg
.ac dec 10 100 1meg
.tf V(out) VIN
.end
