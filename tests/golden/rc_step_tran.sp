* single-pole RC step: v(out) = 1 - e^(-t/tau), tau = 1 us
VIN in 0 AC 1 PULSE(0 1)
R1 in out 1k
C1 out 0 1n
.tran 5e-8 8e-6
.tf V(out) VIN
.end
