//! Conjugate-pair sampling acceptance: solving only the closed upper half
//! of every window's σ set and mirroring the rest (`conjugate_mirror =
//! true`, the default) produces **bit-identical** solutions to the full
//! sweep (`conjugate_mirror = false`, what `REFGEN_TEST_CONJ=off` forces
//! process-wide) — coefficients, regions, window trails, and diagnostics,
//! across thread counts and both executors, for all four solvers.
//!
//! The sanctioned differences are exactly the sampling-cost fields:
//! mirrored points cost no solve, so `refactor_hits`/`compiled_hits` are
//! (roughly) halved and `mirrored` is nonzero — per batch,
//! `refactor_hits + fresh + mirrored` must still account for every point.
//! Both runs here set the knob explicitly, so this test proves the
//! invariant in every CI configuration, including the `REFGEN_TEST_CONJ=off`
//! pass itself.

use refgen::prelude::*;

fn solver_roster(cfg: RefgenConfig) -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(AdaptiveInterpolator::new(cfg)),
        Box::new(UnitCircleSolver::new(cfg)),
        Box::new(StaticScalingSolver::heuristic(cfg)),
        Box::new(MultiScaleGridSolver::new(1e3, 1e15, 16, cfg)),
    ]
}

/// Diagnostics must match pairwise; `SamplingBatched` modulo its cost
/// fields (`threads`, `refactor_hits`, `compiled_hits`, `mirrored`), which
/// must instead satisfy the halving accounting.
fn assert_same_diagnostics(ctx: &str, on: &[Diagnostic], off: &[Diagnostic]) {
    assert_eq!(on.len(), off.len(), "{ctx}: diagnostic counts differ");
    for (i, (x, y)) in on.iter().zip(off).enumerate() {
        match (x, y) {
            (
                Diagnostic::SamplingBatched {
                    points: p1,
                    refactor_hits: h1,
                    compiled_hits: c1,
                    mirrored: m1,
                    ..
                },
                Diagnostic::SamplingBatched {
                    points: p2,
                    refactor_hits: h2,
                    compiled_hits: c2,
                    mirrored: m2,
                    ..
                },
            ) => {
                assert_eq!(p1, p2, "{ctx}: batch {i} point counts differ");
                assert_eq!(*m2, 0, "{ctx}: batch {i}: full sweep must mirror nothing");
                // The full sweep solves every point; the mirrored run
                // solves exactly the non-mirrored ones.
                assert_eq!(h1 + m1, *h2, "{ctx}: batch {i}: hits + mirrored = full-sweep hits");
                assert_eq!(c1 + m1, *c2, "{ctx}: batch {i}: compiled accounting");
                assert_eq!(h1, c1, "{ctx}: batch {i}: every planned solve runs compiled");
            }
            _ => assert_eq!(x, y, "{ctx}: diagnostic {i} differs"),
        }
    }
}

/// Debug formatting of f64 round-trips, so equal strings ⇔ equal bits.
fn assert_same_solution(ctx: &str, on: &Solution, off: &Solution) {
    assert_eq!(on.method, off.method, "{ctx}");
    assert_eq!(
        format!("{:?}", on.network.denominator.coeffs()),
        format!("{:?}", off.network.denominator.coeffs()),
        "{ctx}: denominator coefficients differ"
    );
    assert_eq!(
        format!("{:?}", on.network.numerator.coeffs()),
        format!("{:?}", off.network.numerator.coeffs()),
        "{ctx}: numerator coefficients differ"
    );
    let ra = &on.network.report;
    let rb = &off.network.report;
    assert_eq!(ra.admittance_degree, rb.admittance_degree, "{ctx}");
    for (pa, pb, poly) in
        [(&ra.denominator, &rb.denominator, "den"), (&ra.numerator, &rb.numerator, "num")]
    {
        let ctx = format!("{ctx}/{poly}");
        assert_eq!(pa.kind, pb.kind, "{ctx}");
        assert_eq!(format!("{:?}", pa.windows), format!("{:?}", pb.windows), "{ctx}: windows");
        assert_eq!(pa.declared_zero, pb.declared_zero, "{ctx}: declared_zero");
        assert_eq!(pa.effective_degree, pb.effective_degree, "{ctx}: effective_degree");
        assert_eq!(pa.total_points, pb.total_points, "{ctx}: total_points");
        // Refactor accounting modulo the halved point counts: mirroring
        // can only reduce solves, never add them.
        assert!(
            pa.refactor_hits <= pb.refactor_hits,
            "{ctx}: mirroring increased solves ({} vs {})",
            pa.refactor_hits,
            pb.refactor_hits
        );
        assert_same_diagnostics(&ctx, &pa.diagnostics, &pb.diagnostics);
    }
}

fn run(
    circuit: &Circuit,
    threads: usize,
    executor: ExecutorKind,
    mirror: bool,
) -> Vec<Result<Solution, RefgenError>> {
    let cfg = RefgenConfig::builder()
        .threads(threads)
        .executor(executor)
        .conjugate_mirror(mirror)
        .build();
    solver_roster(cfg)
        .into_iter()
        .map(|solver| {
            Session::for_circuit(circuit)
                .spec(TransferSpec::voltage_gain("VIN", "out"))
                .solver(solver)
                .solve()
        })
        .collect()
}

fn assert_mirror_invariant(name: &str, circuit: &Circuit) {
    for threads in [1usize, 4] {
        for executor in [ExecutorKind::Scoped, ExecutorKind::Pool] {
            let on = run(circuit, threads, executor, true);
            let off = run(circuit, threads, executor, false);
            assert_eq!(on.len(), off.len());
            let mut mirrored_somewhere = 0u64;
            for (a, b) in on.iter().zip(&off) {
                match (a, b) {
                    (Ok(sa), Ok(sb)) => {
                        let ctx = format!("{name}/{}/t{threads}/{executor:?}", sa.method);
                        assert_same_solution(&ctx, sa, sb);
                        mirrored_somewhere += sa
                            .diagnostics()
                            .filter_map(|d| match d {
                                Diagnostic::SamplingBatched { mirrored, .. } => Some(*mirrored),
                                _ => None,
                            })
                            .sum::<u64>();
                    }
                    // Typed failures must be identical too (unit-circle on
                    // the µA741 legitimately cannot cover the range).
                    (Err(ea), Err(eb)) => {
                        assert_eq!(format!("{ea:?}"), format!("{eb:?}"), "{name}: errors differ")
                    }
                    (a, b) => panic!(
                        "{name}: outcome changed with mirroring: {:?} vs {:?}",
                        a.as_ref().map(|s| s.method),
                        b.as_ref().map(|s| s.method)
                    ),
                }
            }
            assert!(
                mirrored_somewhere > 0,
                "{name}/t{threads}/{executor:?}: mirroring never engaged — \
                 the halving being tested is not happening"
            );
        }
    }
}

#[test]
fn rc_ladder_mirroring_is_bit_identical() {
    assert_mirror_invariant("ladder10", &library::rc_ladder(10, 1e3, 1e-9));
}

#[test]
fn ua741_mirroring_is_bit_identical() {
    assert_mirror_invariant("ua741", &library::ua741());
}
