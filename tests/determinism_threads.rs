//! Determinism acceptance for the plan/execute sampling engine: every
//! solver, driven through `Session`, produces **bit-identical** output at
//! `threads = 1` and `threads = 4` — coefficients, diagnostics order, and
//! report fields. Batched sampling collects per-point results in index
//! order and each point is a pure function of the window plan, so the
//! thread count may only change wall-clock time, never a single bit of
//! the answer.
//!
//! The lone sanctioned difference is the `threads` field of
//! `Diagnostic::SamplingBatched`, which *reports* the worker count used;
//! its `points` and `refactor_hits` fields must still agree exactly.

use refgen::prelude::*;

fn solver_roster(cfg: RefgenConfig) -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(AdaptiveInterpolator::new(cfg)),
        Box::new(UnitCircleSolver::new(cfg)),
        Box::new(StaticScalingSolver::heuristic(cfg)),
        Box::new(MultiScaleGridSolver::new(1e3, 1e15, 16, cfg)),
    ]
}

/// Diagnostics must match pairwise; `SamplingBatched` modulo its
/// `threads` report field, everything else exactly.
fn assert_same_diagnostics(ctx: &str, a: &[Diagnostic], b: &[Diagnostic]) {
    assert_eq!(a.len(), b.len(), "{ctx}: diagnostic counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (
                Diagnostic::SamplingBatched { points: p1, refactor_hits: h1, .. },
                Diagnostic::SamplingBatched { points: p2, refactor_hits: h2, .. },
            ) => {
                assert_eq!(p1, p2, "{ctx}: batch {i} point counts differ");
                assert_eq!(h1, h2, "{ctx}: batch {i} refactor hits differ");
            }
            _ => assert_eq!(x, y, "{ctx}: diagnostic {i} differs"),
        }
    }
}

/// Debug formatting of f64 round-trips, so equal strings ⇔ equal bits.
fn assert_same_solution(ctx: &str, a: &Solution, b: &Solution) {
    assert_eq!(a.method, b.method, "{ctx}");
    assert_eq!(
        format!("{:?}", a.network.denominator.coeffs()),
        format!("{:?}", b.network.denominator.coeffs()),
        "{ctx}: denominator coefficients differ"
    );
    assert_eq!(
        format!("{:?}", a.network.numerator.coeffs()),
        format!("{:?}", b.network.numerator.coeffs()),
        "{ctx}: numerator coefficients differ"
    );
    let ra = &a.network.report;
    let rb = &b.network.report;
    assert_eq!(ra.admittance_degree, rb.admittance_degree, "{ctx}");
    for (pa, pb, poly) in
        [(&ra.denominator, &rb.denominator, "den"), (&ra.numerator, &rb.numerator, "num")]
    {
        let ctx = format!("{ctx}/{poly}");
        assert_eq!(pa.kind, pb.kind, "{ctx}");
        assert_eq!(format!("{:?}", pa.windows), format!("{:?}", pb.windows), "{ctx}: windows");
        assert_eq!(pa.declared_zero, pb.declared_zero, "{ctx}: declared_zero");
        assert_eq!(pa.order_bound, pb.order_bound, "{ctx}: order_bound");
        assert_eq!(pa.effective_degree, pb.effective_degree, "{ctx}: effective_degree");
        assert_eq!(pa.total_points, pb.total_points, "{ctx}: total_points");
        assert_eq!(pa.refactor_hits, pb.refactor_hits, "{ctx}: refactor_hits");
        assert_same_diagnostics(&ctx, &pa.diagnostics, &pb.diagnostics);
    }
}

fn run(circuit: &Circuit, threads: usize) -> Vec<Result<Solution, RefgenError>> {
    let cfg = RefgenConfig::builder().threads(threads).build();
    solver_roster(cfg)
        .into_iter()
        .map(|solver| {
            Session::for_circuit(circuit)
                .spec(TransferSpec::voltage_gain("VIN", "out"))
                .solver(solver)
                .solve()
        })
        .collect()
}

fn assert_thread_invariant(name: &str, circuit: &Circuit) {
    let one = run(circuit, 1);
    let four = run(circuit, 4);
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(&four) {
        match (a, b) {
            (Ok(sa), Ok(sb)) => {
                let ctx = format!("{name}/{}", sa.method);
                assert_same_solution(&ctx, sa, sb);
                // The engine's cheap path must carry real solves at both
                // thread counts (pivot-order reuse, not silent fallback).
                assert!(sa.refactor_hits() > 0, "{ctx}: no pivot-order reuse at threads = 1");
            }
            // Typed failures must be identical too (unit-circle on the
            // µA741 legitimately cannot cover the coefficient range).
            (Err(ea), Err(eb)) => {
                assert_eq!(format!("{ea:?}"), format!("{eb:?}"), "{name}: errors differ")
            }
            (a, b) => panic!(
                "{name}: outcome changed with thread count: {:?} vs {:?}",
                a.as_ref().map(|s| s.method),
                b.as_ref().map(|s| s.method)
            ),
        }
    }
}

#[test]
fn rc_ladder_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("ladder12", &library::rc_ladder(12, 1e3, 1e-9));
}

#[test]
fn ua741_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("ua741", &library::ua741());
}
