//! Golden-data validation tier.
//!
//! `tests/golden/<name>.sp` are self-contained hierarchical netlists
//! (`.SUBCKT` library blocks + `.AC`/`.TF` cards); `<name>.json` are the
//! committed reference curves computed by the independent per-frequency LU
//! path (`AcAnalysis`), regenerated only deliberately via
//! `cargo run -p refgen_bench --bin golden_gen`. Every `Solver` must
//! reproduce the curves within the stored tolerances, and a netlist-defined
//! subcircuit fleet must solve through one shared pivot search and one
//! compiled symbolic program.

use refgen::prelude::*;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// One parsed golden case.
struct Golden {
    name: String,
    solvers: String,
    tol_mag_db: f64,
    tol_phase_deg: f64,
    freq_hz: Vec<f64>,
    mag_db: Vec<f64>,
    phase_deg: Vec<f64>,
    netlist: Netlist,
}

/// Minimal field extraction for the flat `refgen-golden/v1` schema (the
/// workspace has no JSON dependency; the writer emits one known shape).
fn json_str(json: &str, key: &str) -> String {
    let pat = format!("\"{key}\": \"");
    let start = json.find(&pat).unwrap_or_else(|| panic!("missing key {key}")) + pat.len();
    let end = json[start..].find('"').expect("unterminated string") + start;
    json[start..end].to_string()
}

fn json_f64(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let start = json.find(&pat).unwrap_or_else(|| panic!("missing key {key}")) + pat.len();
    let end = json[start..].find([',', '\n']).map_or(json.len(), |e| e + start);
    json[start..end].trim().trim_end_matches(',').parse().expect("number")
}

fn json_f64_array(json: &str, key: &str) -> Vec<f64> {
    let pat = format!("\"{key}\": [");
    let start = json.find(&pat).unwrap_or_else(|| panic!("missing key {key}")) + pat.len();
    let end = json[start..].find(']').expect("unterminated array") + start;
    json[start..end].split(',').map(|t| t.trim().parse().expect("array element")).collect()
}

fn load_golden(name: &str) -> Golden {
    let dir = golden_dir();
    let sp = std::fs::read_to_string(dir.join(format!("{name}.sp"))).expect("golden .sp");
    let json = std::fs::read_to_string(dir.join(format!("{name}.json"))).expect("golden .json");
    assert_eq!(json_str(&json, "schema"), "refgen-golden/v1");
    assert_eq!(json_str(&json, "name"), name);
    let netlist = parse_netlist(&sp).expect("golden netlist parses");
    netlist.circuit.validate().expect("golden netlist validates");
    let golden = Golden {
        name: name.to_string(),
        solvers: json_str(&json, "solvers"),
        tol_mag_db: json_f64(&json, "tol_mag_db"),
        tol_phase_deg: json_f64(&json, "tol_phase_deg"),
        freq_hz: json_f64_array(&json, "freq_hz"),
        mag_db: json_f64_array(&json, "mag_db"),
        phase_deg: json_f64_array(&json, "phase_deg"),
        netlist,
    };
    assert_eq!(golden.freq_hz.len(), golden.mag_db.len());
    assert_eq!(golden.freq_hz.len(), golden.phase_deg.len());
    assert!(!golden.freq_hz.is_empty());
    // The committed grid must be exactly the .AC card's grid: the curve and
    // the netlist travel together.
    let card = golden.netlist.analysis.ac().expect(".AC card");
    let card_grid = card.frequencies();
    assert_eq!(card_grid.len(), golden.freq_hz.len(), "{name}: grid shape");
    for (a, b) in card_grid.iter().zip(&golden.freq_hz) {
        assert!((a - b).abs() <= 1e-9 * b.abs(), "{name}: grid point {a} vs {b}");
    }
    golden
}

fn mag_db_of(h: refgen::numeric::Complex) -> f64 {
    let db = 20.0 * h.abs().log10();
    if db.is_finite() {
        db.max(AcPoint::MAG_DB_FLOOR)
    } else {
        AcPoint::MAG_DB_FLOOR
    }
}

fn phase_distance_deg(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(360.0);
    d.min(360.0 - d)
}

/// Golden tolerances pin the *default* pivot path's round-off. When the
/// harness forces an alternative ordering (`REFGEN_TEST_ORDERING`), the
/// factorization runs a different but equally valid pivot sequence, so
/// last-digit rounding legitimately moves — and a ~1e-8 relative
/// perturbation of a recovered coefficient shows up as a phase error
/// growing linearly with frequency (measured 1.2e-8° at 100 Hz →
/// 1.2e-4° at 1 MHz on the tightest case). The forced-ordering passes
/// therefore hold the *curves* to 1e-3 dB / 1e-3 degrees rather than the
/// default path's bit-level 1e-9 pins.
fn ordering_slack() -> f64 {
    match std::env::var("REFGEN_TEST_ORDERING") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => 1e6,
        _ => 1.0,
    }
}

/// Asserts a response curve matches the golden one within tolerance.
fn assert_curve(golden: &Golden, label: &str, response: impl Fn(f64) -> refgen::numeric::Complex) {
    let slack = ordering_slack();
    for (i, &f) in golden.freq_hz.iter().enumerate() {
        let h = response(f);
        let mag = mag_db_of(h);
        let phase = h.arg().to_degrees();
        let dm = (mag - golden.mag_db[i]).abs();
        let dp = phase_distance_deg(phase, golden.phase_deg[i]);
        assert!(
            dm <= golden.tol_mag_db * slack,
            "{}/{label} at {f} Hz: mag {mag} vs {} (err {dm:e} > tol {:e})",
            golden.name,
            golden.mag_db[i],
            golden.tol_mag_db
        );
        assert!(
            dp <= golden.tol_phase_deg * slack,
            "{}/{label} at {f} Hz: phase {phase} vs {} (err {dp:e} > tol {:e})",
            golden.name,
            golden.phase_deg[i],
            golden.tol_phase_deg
        );
    }
}

/// Runs every solver the case's `solvers` field demands against the
/// committed curve.
///
/// * `"all"` — the adaptive interpolator plus all three baselines,
///   including the unit-circle solver; only normalized circuits (dynamics
///   near 1 rad/s) are within the unit circle's reach, so such cases get a
///   [`MultiScaleGridSolver`] grid matched to that band too.
/// * `"scaled"` — the solvers built for wide coefficient spread. On these
///   engineering-scale circuits the unit-circle baseline is the paper's
///   designed round-off failure (hundreds of dB of error on `rc_cascade`),
///   so it is asserted to *run* but not to match.
fn check_solvers(name: &str) {
    let golden = load_golden(name);
    let spec = TransferSpec::from(golden.netlist.analysis.tf().expect(".TF card"));

    // Independent AC path first: confirms the committed curve itself.
    let ac = AcAnalysis::new(&golden.netlist.circuit, spec.clone()).expect("assemble");
    assert_curve(&golden, "ac-lu", |f| ac.at(f).expect("nonsingular").response);

    let config = RefgenConfig::default();
    let normalized = golden.solvers == "all";
    let (grid_lo, grid_hi) = if normalized { (1e-3, 1e3) } else { (1e3, 1e15) };
    let mut solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(AdaptiveInterpolator::new(config)),
        Box::new(StaticScalingSolver::heuristic(config)),
        Box::new(MultiScaleGridSolver::new(grid_lo, grid_hi, 16, config)),
    ];
    if normalized {
        solvers.push(Box::new(UnitCircleSolver::new(config)));
    } else {
        assert_eq!(golden.solvers, "scaled");
        // The designed failure case still solves; its accuracy is not held
        // to the golden curve on circuits beyond its reach.
        Session::for_circuit(&golden.netlist.circuit)
            .spec(spec.clone())
            .solver(UnitCircleSolver::new(config))
            .solve()
            .unwrap_or_else(|e| panic!("{name}: unit-circle failed to run: {e}"));
    }
    for solver in solvers {
        let solution = Session::for_circuit(&golden.netlist.circuit)
            .spec(spec.clone())
            .solver(solver)
            .solve()
            .unwrap_or_else(|e| panic!("{name}: solver failed: {e}"));
        let nf = solution.network;
        assert_curve(&golden, solution.method, |f| nf.response_at_hz(f));
    }
}

#[test]
fn rc_prototype_matches_golden_for_every_solver() {
    check_solvers("rc_prototype");
}

#[test]
fn sallen_key_matches_golden_for_scaled_solvers() {
    check_solvers("sallen_key");
}

#[test]
fn rc_cascade_matches_golden_for_scaled_solvers() {
    check_solvers("rc_cascade");
}

#[test]
fn rlc_butterworth_matches_golden_on_ac_path() {
    // Inductors are outside the interpolation engine by design; this golden
    // pins the independent AC path on an RLC workload.
    let golden = load_golden("rlc_butterworth");
    assert_eq!(golden.solvers, "ac");
    let spec = TransferSpec::from(golden.netlist.analysis.tf().expect(".TF card"));
    let ac = AcAnalysis::new(&golden.netlist.circuit, spec).expect("assemble");
    assert_curve(&golden, "ac-lu", |f| ac.at(f).expect("nonsingular").response);
    // Butterworth sanity: 0 dB at DC-ish, −3 dB at cutoff (ladder is
    // doubly terminated, so the passband sits at −6.02 dB absolute).
    let h0 = ac.at(1e3).expect("passband").response.abs();
    assert!((20.0 * h0.log10() + 6.0206).abs() < 0.02);
    let hc = ac.at(1e5).expect("cutoff").response.abs();
    assert!((20.0 * (hc / h0).log10() + 3.0103).abs() < 0.05);
}

/// The transient golden: the committed curve is the closed-form
/// `PartialFractions::step_response` of the symbolically recovered
/// transfer function, sampled on the netlist's own `.TRAN` axis
/// (regenerated via `golden_gen`, so CI's diff check pins the whole
/// symbolic → partial-fraction pipeline bit-for-bit). The companion-model
/// stepper must track it within the stored voltage tolerance with the
/// one-factorization counter contract intact.
#[test]
fn rc_step_tran_matches_golden_step_response() {
    let dir = golden_dir();
    let sp = std::fs::read_to_string(dir.join("rc_step_tran.sp")).expect("golden .sp");
    let json = std::fs::read_to_string(dir.join("rc_step_tran.json")).expect("golden .json");
    assert_eq!(json_str(&json, "schema"), "refgen-golden-tran/v1");
    assert_eq!(json_str(&json, "name"), "rc_step_tran");
    let tol_v = json_f64(&json, "tol_v");
    let time_s = json_f64_array(&json, "time_s");
    let v_out = json_f64_array(&json, "v_out");
    assert_eq!(time_s.len(), v_out.len());

    let netlist = parse_netlist(&sp).expect("golden netlist parses");
    netlist.circuit.validate().expect("golden netlist validates");
    let card = netlist.analysis.tran().expect(".TRAN card").clone();
    let result = Session::for_circuit(&netlist.circuit)
        .transient(TransientAnalysis::new(card))
        .expect("transient runs");

    // The committed axis must be exactly the .TRAN card's axis.
    assert_eq!(result.times().len(), time_s.len(), "time axis shape");
    for (a, b) in result.times().iter().zip(&time_s) {
        assert!((a - b).abs() <= 1e-12 * b.abs().max(1e-12), "time {a} vs {b}");
    }

    let stats = result.stats;
    assert_eq!(stats.refactor_hits, 1, "one numeric factorization per run");
    assert_eq!(stats.fresh_factorizations, 0);
    let wave = result.node("out").expect("out node recorded");
    for (i, (&got, &want)) in wave.iter().zip(&v_out).enumerate() {
        assert!(
            (got - want).abs() <= tol_v,
            "t = {}: stepper {got} vs golden {want} (tol {tol_v:e})",
            time_s[i]
        );
    }
}

/// The acceptance criterion of the hierarchical front end: a
/// netlist-defined fleet of 32 biquad instances with perturbed parameters
/// solves through `Session::variant_circuits` with exactly one pivot
/// search and one compiled symbolic program *per recovered polynomial*
/// (numerator and denominator → two each in total, independent of fleet
/// size) — the flattened subcircuits share a topology, so the `PlanCache`
/// and program cache hit for every variant after the first.
#[test]
fn netlist_biquad_fleet_shares_one_plan_and_program() {
    let golden = load_golden("sallen_key");
    let spec = TransferSpec::from(golden.netlist.analysis.tf().expect(".TF card"));
    let fleet: Vec<Circuit> = (0..32)
        .map(|i| {
            // Deterministic ±4 % component spread, different per instance.
            let wiggle = |k: usize| 1.0 + 0.04 * (((i * 7 + k * 13) % 17) as f64 / 8.0 - 1.0);
            let top = format!(
                "VIN in 0 AC 1\n\
                 X1 in out sallen_key r1={:e} r2={:e} c1={:e} c2={:e}\n\
                 RL out 0 1meg\n",
                1e4 * wiggle(0),
                1e4 * wiggle(1),
                4e-9 * wiggle(2),
                390e-12 * wiggle(3),
            );
            let c = parse_spice(&library::netlist_with_library(&top)).expect("fleet netlist");
            c.validate().expect("fleet netlist validates");
            c
        })
        .collect();

    let run = Session::for_circuit(&fleet[0])
        .spec(spec.clone())
        .variant_circuits(&fleet)
        .solve_all()
        .expect("fleet solves");
    assert_eq!(run.report.variants, 32);
    assert_eq!(run.report.pivot_searches, 2, "one pivot search per polynomial, fleet-wide");
    assert_eq!(run.report.programs_compiled, 2, "one compiled program per polynomial, fleet-wide");
    assert!(run.report.shared_plan_hits >= 62, "every later variant reuses both plans");

    // The counts are fleet-size independent: a quarter-size fleet costs the
    // same two searches and two programs.
    let small = Session::for_circuit(&fleet[0])
        .spec(spec.clone())
        .variant_circuits(&fleet[..8])
        .solve_all()
        .expect("small fleet solves");
    assert_eq!(small.report.pivot_searches, run.report.pivot_searches);
    assert_eq!(small.report.programs_compiled, run.report.programs_compiled);

    // Each variant's recovered network function must match its own
    // independent AC solve — the fleet shares the plan, not the answer.
    for (i, (circuit, solution)) in fleet.iter().zip(run.solutions()).enumerate() {
        let ac = AcAnalysis::new(circuit, spec.clone()).expect("assemble");
        for f in [1e3, 12.7e3, 1e5] {
            let truth = ac.at(f).expect("nonsingular").response;
            let got = solution.network.response_at_hz(f);
            let err = (got - truth).abs() / truth.abs();
            assert!(err < 1e-6, "variant {i} at {f} Hz: rel err {err:e}");
        }
    }
}
