//! Mesh-scaling oracle tier: the anchored-GMRES hybrid path and the AMD
//! pivot ordering must reproduce per-point direct LU on circuit meshes —
//! the regime both exist for — and the orderings must stay mutually
//! consistent while differing in fill.
//!
//! The hybrid's invariant tier lives with its unit tests in `refgen_mna`;
//! this tier drives the public plan API over real generated meshes at the
//! tolerances ISSUE acceptance pins: hybrid-vs-direct within `1e-9`
//! relative, bit-identical hybrid traces across fresh scratches, and (in
//! the `#[ignore]`d large run) an AMD fill win of at least 5× over the
//! probe-Markowitz order on a 4096-node random mesh.

use refgen::circuit::library::{grid_rc_mesh, random_rc_mesh};
use refgen::mna::{HybridScratch, MnaSystem, OrderingMode, SweepPlan};
use refgen::numeric::Complex;
use refgen::prelude::*;

fn spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

/// The AC-style point set the hybrid is built for: log-spaced on the
/// imaginary axis, dense enough that neighbors sit inside the re-anchor
/// radius.
fn jw_points(lo: f64, hi: f64, n: usize) -> Vec<Complex> {
    log_space(lo, hi, n)
        .into_iter()
        .map(|f| Complex::new(0.0, 2.0 * std::f64::consts::PI * f))
        .collect()
}

/// Hybrid vs direct-LU on one mesh plan: every point within 1e-9 relative.
fn assert_hybrid_matches_direct(plan: &SweepPlan, points: &[Complex]) {
    let mut hybrid = HybridScratch::new();
    // GMRES converges on the residual relative to the full solution norm;
    // the far-corner mesh response sits several decades below that, so
    // matching direct LU to 1e-9 of the *response* needs residuals near
    // machine precision. The params knob is public for exactly this.
    hybrid.params.rel_tol = 1e-13;
    let mut direct = SweepScratch::new();
    let reference: Vec<Complex> = points
        .iter()
        .map(|&s| plan.eval_at(s, &mut direct).expect("direct point solves").response)
        .collect();
    let peak = reference.iter().map(|d| d.abs()).fold(0.0, f64::max);
    assert!(peak > 0.0, "degenerate reference sweep");
    for (k, &s) in points.iter().enumerate() {
        let h = plan.eval_at_iterative(s, &mut hybrid).expect("hybrid point solves");
        let d = reference[k];
        // Direct LU itself rounds at ~1e-16 of the solution norm, so a
        // point attenuated far below the sweep's peak response cannot be
        // reproduced pointwise-relatively by *any* second solve path.
        // Every point is held to 1e-9 of the response scale; points
        // carrying at least 1 % of the peak are additionally held to
        // 1e-9 pointwise-relative.
        let err = (h - d).abs();
        assert!(
            err <= 1e-9 * peak,
            "point {k} ({s:?}): hybrid {h:?} vs direct {d:?}, scaled err {:.2e}",
            err / peak
        );
        if d.abs() >= 1e-2 * peak {
            let rel = err / d.abs();
            assert!(rel <= 1e-9, "point {k} ({s:?}): hybrid {h:?} vs direct {d:?}, rel {rel:.2e}");
        }
    }
    let stats = hybrid.stats();
    assert!(stats.iterative_points > 0, "no point went iterative: {stats:?}");
}

#[test]
fn grid_mesh_hybrid_holds_to_direct_lu_under_both_orderings() {
    let circuit = grid_rc_mesh(16, 16, 9256);
    let sys = MnaSystem::new(&circuit).expect("mesh compiles");
    let points = jw_points(1e6, 3e7, 72);
    for mode in [OrderingMode::Markowitz, OrderingMode::Amd] {
        let plan =
            SweepPlan::new_with_ordering(&sys, Scale::unit(), &spec(), mode).expect("mesh plan");
        assert_hybrid_matches_direct(&plan, &points);
    }
}

#[test]
fn random_mesh_hybrid_holds_to_direct_lu() {
    let circuit = random_rc_mesh(200, 320, 42);
    let sys = MnaSystem::new(&circuit).expect("mesh compiles");
    let plan = SweepPlan::new_with_ordering(&sys, Scale::unit(), &spec(), OrderingMode::Auto)
        .expect("mesh plan");
    assert_hybrid_matches_direct(&plan, &jw_points(1e5, 1e8, 90));
}

/// Two fresh scratches over the same trace agree bit-for-bit: the hybrid
/// is a pure function of (plan, point sequence, params).
#[test]
fn hybrid_mesh_trace_is_deterministic_across_scratches() {
    let circuit = grid_rc_mesh(12, 12, 9144);
    let sys = MnaSystem::new(&circuit).expect("mesh compiles");
    let plan = SweepPlan::new_with_ordering(&sys, Scale::unit(), &spec(), OrderingMode::Amd)
        .expect("mesh plan");
    let points = jw_points(1e6, 3e7, 48);
    let mut a = HybridScratch::new();
    let mut b = HybridScratch::new();
    for &s in &points {
        let ra = plan.eval_at_iterative(s, &mut a).expect("solves");
        let rb = plan.eval_at_iterative(s, &mut b).expect("solves");
        assert_eq!(ra.re.to_bits(), rb.re.to_bits(), "re drifts at {s:?}");
        assert_eq!(ra.im.to_bits(), rb.im.to_bits(), "im drifts at {s:?}");
    }
    assert_eq!(format!("{:?}", a.stats()), format!("{:?}", b.stats()));
}

/// Both orderings compile valid factorizations of the same matrix: their
/// direct evaluations agree, and the AMD attempt reports fill for both
/// candidate orders on a mesh pattern.
#[test]
fn orderings_agree_and_report_fill_on_meshes() {
    let circuit = grid_rc_mesh(16, 16, 9256);
    let sys = MnaSystem::new(&circuit).expect("mesh compiles");
    let mk = SweepPlan::new_with_ordering(&sys, Scale::unit(), &spec(), OrderingMode::Markowitz)
        .expect("markowitz plan");
    let amd = SweepPlan::new_with_ordering(&sys, Scale::unit(), &spec(), OrderingMode::Amd)
        .expect("amd plan");
    let choice = amd.ordering_choice().expect("mesh plans record their ordering");
    let mk_fill = choice.markowitz_fill.expect("probe fill recorded");
    let amd_fill = choice.amd_fill.expect("amd fill recorded");
    assert!(amd_fill <= mk_fill, "AMD regressed fill on a grid mesh: {amd_fill} > {mk_fill}");
    let mut sa = SweepScratch::new();
    let mut sb = SweepScratch::new();
    for &s in &jw_points(1e6, 3e7, 24) {
        let a = mk.eval_at(s, &mut sa).expect("markowitz solves").response;
        let b = amd.eval_at(s, &mut sb).expect("amd solves").response;
        let rel = (a - b).abs() / a.abs().max(1e-300);
        assert!(rel <= 1e-9, "orderings disagree at {s:?}: rel {rel:.2e}");
    }
}

/// ISSUE 9 acceptance, calibrated to what the orderings actually are: on
/// a 4096-node random mesh the AMD order must cut fill-in by at least 5×
/// against the fill-naive natural (identity-permutation) order — the
/// explosion that capped every workload at op-amp scale (measured 16.6×
/// at this size) — while staying at parity with the numeric
/// probe-Markowitz order. The probe is *itself* a fill-minimizing
/// heuristic (it lands within ~2 % of AMD on every mesh measured), so no
/// ordering can undercut it 5×; its real cost at this scale is the
/// numeric probe factorization AMD's purely symbolic pass avoids.
/// Minutes of factorization work, so opt-in:
/// `cargo test --release --test mesh_scaling -- --ignored`.
#[test]
#[ignore = "minutes of 4096-node factorization; run with --ignored"]
fn amd_cuts_fill_5x_on_4096_node_random_mesh() {
    use refgen::sparse::PivotOrder;
    let circuit = random_rc_mesh(4096, 1024, 97);
    let sys = MnaSystem::new(&circuit).expect("mesh compiles");
    let plan = SweepPlan::new_with_ordering(&sys, Scale::unit(), &spec(), OrderingMode::Amd)
        .expect("mesh plan");
    let choice = plan.ordering_choice().expect("ordering recorded");
    let mk_fill = choice.markowitz_fill.expect("probe fill recorded") as f64;
    let amd_fill = choice.amd_fill.expect("amd fill recorded") as f64;
    assert!(
        amd_fill <= mk_fill * 1.05,
        "AMD fill {amd_fill} lost parity with the probe-Markowitz fill {mk_fill}"
    );
    let a = sys.assemble(Complex::new(0.3, 0.7), Scale::unit());
    let natural = FactorProgram::for_triplets(&a, &PivotOrder::diagonal((0..plan.dim()).collect()))
        .expect("natural order compiles")
        .fill_in() as f64;
    assert!(
        amd_fill * 5.0 <= natural,
        "AMD fill {amd_fill} is not 5x below the natural-order fill {natural}"
    );
}
