//! Parser/writer round-trip guarantees across the whole circuit corpus:
//! `parse_spice(to_spice(c))` must reproduce every element — name, kind,
//! nodes and values — exactly, for every library generator (including the
//! transistor-expanded ones full of `Conductance` and controlled-source
//! elements) and for flattened hierarchical netlists with dotted names.

use proptest::prelude::*;
use refgen::circuit::library::{
    graded_rc_ladder, lc_ladder_lowpass, miller_two_stage_opamp, netlist_with_library,
    positive_feedback_ota, random_rc_mesh, rc_ladder, sallen_key_lowpass, tow_thomas_biquad, ua741,
};
use refgen::prelude::*;

/// Asserts the write→parse→write cycle is lossless and a fixed point.
fn assert_round_trip(label: &str, circuit: &Circuit) {
    let written = to_spice(circuit);
    let reparsed = parse_spice(&written)
        .unwrap_or_else(|e| panic!("{label}: rewritten netlist failed to parse: {e}\n{written}"));
    assert_eq!(circuit.elements(), reparsed.elements(), "{label}: elements differ");
    assert_eq!(written, to_spice(&reparsed), "{label}: writer is not a fixed point");
}

#[test]
fn library_generators_round_trip() {
    let cases: Vec<(&str, Circuit)> = vec![
        ("rc_ladder", rc_ladder(6, 1e3, 1e-9)),
        ("graded_rc_ladder", graded_rc_ladder(5, 1e3, 1e-9, 1.5, 0.7)),
        ("positive_feedback_ota", positive_feedback_ota()),
        ("ua741", ua741()),
        ("tow_thomas_biquad", tow_thomas_biquad(1e4, 0.8, 2.0)),
        ("sallen_key_lowpass", sallen_key_lowpass(1e4, 1.3)),
        ("miller_two_stage_opamp", miller_two_stage_opamp(2e-12, 1e-11)),
        ("lc_ladder_lowpass", lc_ladder_lowpass(5, 50.0, 1e5)),
    ];
    for (label, circuit) in &cases {
        assert_round_trip(label, circuit);
    }
}

#[test]
fn flattened_hierarchies_round_trip() {
    // Flattened subcircuit elements carry dotted names (`X1.XOP.RP`) that
    // no longer start with their type letter — the writer's `<letter>@`
    // escape must carry them through unchanged.
    let tops = [
        "VIN in 0 AC 1\nX1 in out sallen_key\nRL out 0 1meg\n",
        "VIN in 0 AC 1\nX1 in mid rc_lowpass\nX2 mid out rc_lowpass r=2k c=500p\n",
        "VIN in 0 AC 1\nX1 in out rlc_lowpass\n",
        "VIN in 0 AC 1\nRG in inn 10k\nRF out inn 10k\nXA 0 inn out opamp\n",
    ];
    for top in tops {
        let circuit = parse_spice(&netlist_with_library(top)).expect("library netlist parses");
        assert_round_trip(top.lines().nth(1).unwrap(), &circuit);
    }
}

#[test]
fn example_corpus_round_trips_and_analyzes() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/netlists");
    let mut seen = 0;
    let mut entries: Vec<_> =
        std::fs::read_dir(&dir).expect("examples/netlists").map(|e| e.unwrap().path()).collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("sp") {
            continue;
        }
        seen += 1;
        let label = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).expect("read corpus netlist");
        let netlist = parse_netlist(&source)
            .unwrap_or_else(|e| panic!("{label}: corpus netlist failed to parse: {e}"));
        netlist.circuit.validate().unwrap_or_else(|e| panic!("{label}: invalid: {e}"));
        assert!(
            netlist.analysis.ac().is_some() || netlist.analysis.tran().is_some(),
            "{label}: corpus netlists carry an .AC or .TRAN card"
        );
        assert!(netlist.analysis.tf().is_some(), "{label}: corpus netlists carry a .TF card");
        assert_round_trip(&label, &netlist.circuit);
        // And the netlist drives a whole solve on its own cards.
        Session::for_circuit(&netlist.circuit)
            .analysis(&netlist.analysis)
            .solve()
            .unwrap_or_else(|e| panic!("{label}: solve failed: {e}"));
    }
    assert!(seen >= 3, "expected the committed corpus, found {seen} netlists");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random meshes (resistor/capacitor soups with generated names and
    /// values) survive the write→parse cycle exactly.
    #[test]
    fn random_meshes_round_trip(
        nodes in 3usize..9,
        extra in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let circuit = random_rc_mesh(nodes, extra, seed);
        let written = to_spice(&circuit);
        let reparsed = parse_spice(&written).expect("rewritten mesh parses");
        prop_assert_eq!(circuit.elements(), reparsed.elements());
    }
}
