//! End-to-end integration: netlist text → circuit → MNA → adaptive
//! interpolation → validation → SBG/SDG consumers, crossing every crate in
//! the workspace.

use refgen::mna::MnaSystem;
use refgen::prelude::*;
use refgen::symbolic::{
    simplify_before_generation, symbolic_polynomial, truncate_coefficients, SbgOptions,
};

/// Every root suite drives the engine through `Session`/`Solver` — the
/// facade's public front door — never the concrete interpolator methods.
fn solve(circuit: &Circuit) -> Solution {
    Session::for_circuit(circuit).spec(spec()).solve().expect("recovers")
}

fn spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

#[test]
fn netlist_to_references_to_validation() {
    let netlist = "\
* three-pole RC with a bridging cap
VIN in 0 AC 1
R1 in a 2k
C1 a 0 1n
R2 a b 5k
C2 b 0 220p
R3 b out 10k
C3 out 0 100p
CB a out 10p
.end
";
    let circuit = parse_spice(netlist).expect("parses");
    circuit.validate().expect("valid");
    let nf = solve(&circuit).network;
    assert_eq!(nf.denominator.degree(), Some(3), "3 independent states (CB bridges)");
    // Bode cross-check against the simulator.
    let rep =
        validate_against_ac(&nf, &circuit, &spec(), &log_space(1.0, 1e9, 100)).expect("validates");
    assert!(rep.matches_within(1e-6, 1e-4), "mag {} dB", rep.max_mag_err_db);
    // Writer round-trip preserves the recovered function.
    let again = parse_spice(&to_spice(&circuit)).expect("round trip");
    let nf2 = solve(&again).network;
    for (a, b) in nf.denominator.coeffs().iter().zip(nf2.denominator.coeffs()) {
        let rel = ((*a - *b).norm() / b.norm()).to_f64();
        assert!(rel < 1e-9);
    }
}

#[test]
fn symbolic_cross_checks_interpolation_on_parsed_circuit() {
    let netlist = "\
VIN in 0 AC 1
R1 in a 1k
GM out 0 a 0 2m
RL out 0 20k
CA a 0 3p
CO out 0 1p
CF a out 0.2p
";
    let circuit = parse_spice(netlist).expect("parses");
    let terms = symbolic_polynomial(&circuit, PolyKind::Denominator).expect("expands");
    let nf = solve(&circuit).network;
    for ct in &terms {
        let sym = ct.total();
        let num = nf.denominator.coeffs()[ct.power].re().to_f64();
        let rel = (sym - num).abs() / sym.abs();
        assert!(rel < 1e-6, "power {}: {sym} vs {num}", ct.power);
    }
    // And the truncation consumes the references without panicking.
    let rep = truncate_coefficients(&terms, &nf.denominator, 1e-3);
    assert!(rep.compression() <= 1.0);
}

#[test]
fn sbg_output_remains_interpolatable_and_close() {
    let circuit = library::positive_feedback_ota();
    let opts = SbgOptions {
        max_mag_err_db: 0.5,
        max_phase_err_deg: 3.0,
        freqs_hz: log_space(1e3, 1e9, 25),
    };
    let out =
        simplify_before_generation(&AdaptiveInterpolator::default(), &circuit, &spec(), &opts)
            .expect("simplifies");
    assert!(!out.removed.is_empty());
    let nf_simplified = solve(&out.simplified).network;
    let nf_full = solve(&circuit).network;
    // The simplified reference stays within the budget of the full one.
    for f in log_space(1e3, 1e9, 25) {
        let a = nf_simplified.response_at_hz(f);
        let b = nf_full.response_at_hz(f);
        let ddb = (20.0 * (a.abs() / b.abs()).log10()).abs();
        assert!(ddb <= 0.6, "{ddb} dB at {f} Hz");
    }
}

#[test]
fn ua741_full_run_matches_paper_structure() {
    let circuit = library::ua741();
    let sys = MnaSystem::new(&circuit).expect("valid");
    // Admittance degree consistency (structural vs numeric probe).
    assert_eq!(sys.admittance_degree(), sys.measured_admittance_degree().expect("probe works"));
    let cfg = RefgenConfig::builder().verify(false).build();
    let nf =
        Session::for_circuit(&circuit).spec(spec()).config(cfg).solve().expect("recovers").network;
    // Same size class as the paper's 48th-order denominator.
    let deg = nf.denominator.degree().expect("non-trivial");
    assert!((35..=40).contains(&deg), "degree {deg}");
    // Coefficients span hundreds of decades (paper: 1e-90 → 1e-522).
    let span = nf.denominator.coeffs()[0].norm().log10()
        - nf.denominator.coeffs().last().expect("nonempty").norm().log10();
    assert!(span > 250.0, "span {span} decades");
    // Three-or-so productive windows tile the range, with reduction
    // shrinking the later ones (Tables 2–3 structure).
    let productive: Vec<_> =
        nf.report.denominator.windows.iter().filter(|w| w.region.is_some()).collect();
    assert!(productive.len() >= 3 && productive.len() <= 6, "{}", productive.len());
    let reduced_pts: Vec<usize> =
        productive.iter().filter(|w| w.reduced).map(|w| w.points).collect();
    assert!(!reduced_pts.is_empty(), "reduction must engage");
    for w in reduced_pts.windows(2) {
        assert!(w[1] <= w[0], "reduced point counts decrease: {reduced_pts:?}");
    }
    // Fig. 2: validation against the AC simulator is tight.
    let rep =
        validate_against_ac(&nf, &circuit, &spec(), &log_space(1.0, 1e8, 80)).expect("validates");
    assert!(rep.matches_within(1e-4, 1e-2), "mag {} dB", rep.max_mag_err_db);
}

#[test]
fn inductor_circuit_full_pipeline() {
    // Inductor circuits route through frequency-only scaling; the recovered
    // function must match the AC simulator like any other circuit.
    let netlist = "\
VIN in 0 AC 1
L1 in out 1m
R1 out 0 1k
C1 out 0 1n
";
    let circuit = parse_spice(netlist).expect("parses");
    let nf = solve(&circuit).network;
    assert_eq!(nf.denominator.degree(), Some(2), "L + C = two states");
    let rep =
        validate_against_ac(&nf, &circuit, &spec(), &log_space(10.0, 1e7, 80)).expect("validates");
    assert!(rep.matches_within(1e-5, 1e-3), "mag {} dB", rep.max_mag_err_db);
}

#[test]
fn miller_pole_splitting_visible_in_recovered_poles() {
    // Increasing the Miller cap must split the poles: dominant pole moves
    // down, first non-dominant pole moves up — classic compensation theory,
    // read directly off the recovered denominators.
    let poles_for = |cc: f64| -> Vec<f64> {
        let c = library::miller_two_stage_opamp(cc, 5e-12);
        let nf = solve(&c).network;
        let mut mags: Vec<f64> = nf.poles().iter().map(|p| p.norm().to_f64()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        mags
    };
    let small = poles_for(0.2e-12);
    let large = poles_for(4e-12);
    assert!(large[0] < small[0], "dominant pole down: {:.3e} vs {:.3e}", large[0], small[0]);
    assert!(large[1] > small[1], "second pole up: {:.3e} vs {:.3e}", large[1], small[1]);
    // And the compensated opamp has healthy DC gain.
    let c = library::miller_two_stage_opamp(2e-12, 5e-12);
    let nf = solve(&c).network;
    let dc_db = 20.0 * nf.dc_gain().abs().log10();
    assert!(dc_db > 50.0 && dc_db < 100.0, "dc gain {dc_db} dB");
}

#[test]
fn error_paths_are_reported_not_panicked() {
    // A purely resistive circuit has no coefficients to recover.
    let netlist = "\
VIN in 0 AC 1
R1 in out 1k
R2 out 0 1k
";
    let circuit = parse_spice(netlist).expect("parses");
    match Session::for_circuit(&circuit).spec(spec()).solve() {
        Err(RefgenError::NoReactiveElements) => {}
        other => panic!("expected NoReactiveElements, got {other:?}"),
    }
}
