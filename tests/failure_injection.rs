//! Failure injection: the engine must report pathological inputs as typed
//! errors (or recover gracefully), never panic or return silent garbage.

use refgen::mna::{MnaError, MnaSystem};
use refgen::numeric::Complex;
use refgen::prelude::*;

fn spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

#[test]
fn capacitor_loop_drops_order() {
    // Three caps in a loop contribute only two independent states: the
    // order bound (3) exceeds the true order (2) and the engine must
    // declare the top coefficient zero rather than invent it.
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).unwrap();
    c.add_resistor("R1", "in", "a", 1e3).unwrap();
    c.add_capacitor("C1", "a", "out", 1e-9).unwrap();
    c.add_capacitor("C2", "out", "0", 1e-9).unwrap();
    c.add_capacitor("C3", "a", "0", 1e-9).unwrap(); // closes the loop with C1+C2
    c.add_resistor("R2", "out", "0", 1e3).unwrap();
    let (den, rep) =
        Session::for_circuit(&c).spec(spec()).solve_polynomial(PolyKind::Denominator).unwrap();
    assert_eq!(den.degree(), Some(2), "cap loop: order 2, bound 3");
    assert!(rep.declared_zero.contains(&3));
    // The stall decision is also visible as a typed diagnostic.
    assert!(rep
        .diagnostics
        .iter()
        .any(|d| matches!(d, Diagnostic::CoefficientsDeclaredZero { .. })));
}

#[test]
fn dangling_output_node_is_reported() {
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).unwrap();
    c.add_resistor("R1", "in", "0", 1e3).unwrap();
    c.add_capacitor("C1", "in", "0", 1e-9).unwrap();
    match Session::for_circuit(&c).spec(spec()).solve() {
        Err(RefgenError::Mna(MnaError::NoSuchNode { name })) => assert_eq!(name, "out"),
        other => panic!("expected NoSuchNode, got {other:?}"),
    }
}

#[test]
fn singular_circuit_two_voltage_sources() {
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).unwrap();
    c.add_vsource("V2", "in", "0", 2.0).unwrap();
    c.add_resistor("R1", "in", "out", 1e3).unwrap();
    c.add_capacitor("C1", "out", "0", 1e-9).unwrap();
    // Two parallel V sources make Y singular at every frequency; the
    // denominator samples are exactly zero and the engine reports a zero
    // polynomial rather than crashing.
    let (den, rep) =
        Session::for_circuit(&c).spec(spec()).solve_polynomial(PolyKind::Denominator).unwrap();
    assert!(den.degree().is_none(), "zero polynomial");
    assert!(rep.diagnostics.iter().any(|d| matches!(d, Diagnostic::AllSamplesZero { .. })));
}

#[test]
fn extreme_element_values_still_recover() {
    // Values at the edges of physical plausibility: aF caps against MΩ —
    // coefficient ratios ~1e13 per step, the worst case for one window.
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).unwrap();
    c.add_resistor("R1", "in", "a", 1e7).unwrap();
    c.add_capacitor("C1", "a", "0", 1e-18).unwrap();
    c.add_resistor("R2", "a", "out", 1e6).unwrap();
    c.add_capacitor("C2", "out", "0", 5e-18).unwrap();
    let nf = Session::for_circuit(&c).spec(spec()).solve().unwrap().network;
    assert_eq!(nf.denominator.degree(), Some(2));
    // Cross-check at the (very high) pole frequencies.
    let ac = refgen::mna::AcAnalysis::new(&c, spec()).unwrap();
    for f in [1e9, 3e10, 1e12] {
        let sim = ac.at(f).unwrap().response;
        let poly = nf.response_at_hz(f);
        assert!((poly - sim).abs() / sim.abs() < 1e-7, "at {f} Hz");
    }
}

#[test]
fn inverting_gm_stage_with_miller_cap() {
    // A common-source-style inverting stage (VCCS pulls the output node
    // down for positive input) produces sign-mixed numerator coefficients
    // and the classic RHP Miller zero — both must come out of the engine.
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).unwrap();
    c.add_resistor("R1", "in", "a", 1e4).unwrap();
    c.add_vccs("GM1", "out", "0", "a", "0", 1e-3).unwrap();
    c.add_resistor("RL", "out", "0", 1e5).unwrap();
    c.add_capacitor("CM", "a", "out", 1e-12).unwrap(); // Miller
    c.add_capacitor("CA", "a", "0", 1e-13).unwrap();
    c.add_capacitor("CO", "out", "0", 1e-12).unwrap();
    let nf = Session::for_circuit(&c).spec(spec()).solve().unwrap().network;
    // Inverting gain ≈ −gm·RL at DC.
    assert!(nf.dc_gain().re < -50.0, "dc {}", nf.dc_gain());
    // Miller RHP zero shows up in the numerator (sign change at gm/CM).
    let zeros = nf.zeros();
    assert!(
        zeros.iter().any(|z| z.to_complex().re > 0.0),
        "expected the RHP Miller zero, zeros: {zeros:?}"
    );
}

#[test]
fn mna_scale_rejects_nonsense() {
    let result = std::panic::catch_unwind(|| Scale::new(-1.0, 1.0));
    assert!(result.is_err(), "negative scale must panic");
    let result = std::panic::catch_unwind(|| Scale::new(1.0, f64::NAN));
    assert!(result.is_err(), "NaN scale must panic");
}

#[test]
fn tiny_budget_is_a_typed_error() {
    let c = library::ua741();
    let cfg = RefgenConfig::builder().max_interpolations(2).verify(false).build();
    match Session::for_circuit(&c).spec(spec()).config(cfg).solve_polynomial(PolyKind::Denominator)
    {
        Err(RefgenError::DidNotConverge { missing }) => assert!(!missing.is_empty()),
        other => panic!("expected DidNotConverge, got {:?}", other.map(|_| "ok")),
    }
}

#[test]
fn det_at_exact_pole_frequency() {
    // Evaluating the determinant exactly at a pole: D = 0 there; the MNA
    // layer must return a zero determinant, not an error.
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).unwrap();
    c.add_resistor("R1", "in", "out", 1e3).unwrap();
    c.add_capacitor("C1", "out", "0", 1e-9).unwrap();
    let sys = MnaSystem::new(&c).unwrap();
    let pole = Complex::real(-1.0 / (1e3 * 1e-9));
    let d = sys.det(pole, Scale::unit()).unwrap();
    // Not exactly zero in floating point, but far below the off-pole level.
    let off = sys.det(pole.scale(2.0), Scale::unit()).unwrap();
    assert!((d.norm() / off.norm()).to_f64() < 1e-9, "{d} vs {off}");
}
