//! Observer acceptance: typed [`Diagnostic`] events fire live during a
//! µA741-class adaptive run, and the streamed events equal the trail
//! recorded in the returned `Solution`.

use refgen::prelude::*;

fn spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

#[test]
fn diagnostics_stream_on_ua741_run() {
    let circuit = library::ua741();
    let mut obs = CollectObserver::new();
    let solution = Session::for_circuit(&circuit)
        .spec(spec())
        .config(RefgenConfig::builder().verify(false).build())
        .observer(&mut obs)
        .solve()
        .expect("µA741 recovers");

    // One WindowOpened per interpolation; the µA741 denominator alone needs
    // several windows to tile hundreds of decades of coefficient spread.
    let windows = obs.count_where(|d| matches!(d, Diagnostic::WindowOpened { .. }));
    assert!(windows >= 3, "got {windows} WindowOpened events");
    // The order bound (one per reactive element) exceeds the true degree:
    // stall detection declares the tail zero and says so in a typed event.
    let report = &solution.network.report.denominator;
    assert!(report.order_bound > solution.network.denominator.degree().expect("non-trivial"));
    assert!(
        obs.count_where(|d| matches!(d, Diagnostic::CoefficientsDeclaredZero { .. })) >= 1,
        "expected a CoefficientsDeclaredZero event; got {:?}",
        obs.events
    );
    // Severity classification: declared zeros are warnings.
    assert!(obs.warnings().count() >= 1);
    // The live stream and the Solution's recorded trail are the same, in
    // the same order (denominator recovery first, then numerator).
    let recorded: Vec<Diagnostic> = solution.diagnostics().cloned().collect();
    assert_eq!(obs.events, recorded);
}

/// A downstream `Observer` implementation (not one of the library-provided
/// ones) proving the trait is implementable outside the crate and receives
/// per-kind callbacks.
#[derive(Default)]
struct KindCounts {
    windows: usize,
    declared_zero: usize,
    gap_repaired: usize,
    cross_check: usize,
    all_zero: usize,
    other: usize,
}

impl Observer for KindCounts {
    fn on_diagnostic(&mut self, d: &Diagnostic) {
        match d {
            Diagnostic::WindowOpened { .. } => self.windows += 1,
            Diagnostic::CoefficientsDeclaredZero { .. } => self.declared_zero += 1,
            Diagnostic::GapRepaired { .. } => self.gap_repaired += 1,
            Diagnostic::CrossCheckMismatch { .. } => self.cross_check += 1,
            Diagnostic::AllSamplesZero { .. } => self.all_zero += 1,
            _ => self.other += 1,
        }
    }
}

#[test]
fn custom_observer_counts_event_kinds_on_ua741() {
    let circuit = library::ua741();
    let mut counts = KindCounts::default();
    let solution = Session::for_circuit(&circuit)
        .spec(spec())
        .config(RefgenConfig::builder().verify(false).build())
        .observer(&mut counts)
        .solve()
        .expect("µA741 recovers");
    assert!(counts.windows >= solution.network.report.denominator.windows.len());
    assert!(counts.declared_zero >= 1, "µA741's order bound exceeds its true degree");
    assert_eq!(counts.all_zero, 0, "nothing degenerate in the library µA741");
}

#[test]
fn gap_repair_fires_with_overshooting_tuning() {
    // An aggressive eq. (14) tuning factor `r` overshoots the next window
    // past the accepted range; eq. (16) bisection closes the hole and the
    // repair surfaces as a typed GapRepaired event.
    let circuit = library::ua741();
    let mut obs = CollectObserver::new();
    let cfg = RefgenConfig::builder()
        .verify(false)
        .tuning_r(8.0)
        .max_step_decades_per_index(20.0)
        .gap_retries(6)
        .build();
    Session::for_circuit(&circuit)
        .spec(spec())
        .config(cfg)
        .observer(&mut obs)
        .solve()
        .expect("bisection recovers the overshoot");
    assert!(
        obs.count_where(|d| matches!(d, Diagnostic::GapRepaired { .. })) >= 1,
        "expected a GapRepaired event; got {:?}",
        obs.events
    );
}

#[test]
fn closure_observer_needs_no_named_type() {
    let circuit = library::rc_ladder(16, 1e3, 1e-9);
    let mut events = 0usize;
    let mut hook = |_d: &Diagnostic| events += 1;
    Session::for_circuit(&circuit)
        .spec(spec())
        .observer(&mut hook)
        .solve()
        .expect("ladder recovers");
    assert!(events > 0, "observer closure never fired");
}
