//! The variance-oracle tier: Monte-Carlo batch sessions over an analytic
//! RC ladder, checked against **closed-form** coefficient statistics.
//!
//! For a conductance-built 2-section ladder (`VIN`, `G1`, `C1`, `G2`,
//! `C2`) the MNA determinant is, up to one global sign,
//!
//! ```text
//! D(s) = G1·G2 + s·(C1·G2 + C2·G2 + C2·G1) + s²·C1·C2
//! ```
//!
//! Under independent uniform relative tolerances — every conductance
//! multiplied by `a = 1 + t_g·u`, every capacitor by `b = 1 + t_c·u`,
//! `u ~ U[−1, 1)` — each coefficient is a small polynomial in independent
//! multipliers, so its exact mean and variance follow from the moments
//! `E[a] = 1`, `E[a²] = 1 + t_g²/3` alone. A batch session must reproduce
//! those statistics within Monte-Carlo tolerance at a fixed seed — and
//! reproduce them **bit-identically** across `threads ∈ {1, 4}`, across
//! the scoped vs. pool executors, and across batched-replay lane widths
//! `∈ {1, 4, 8}` (variant-major fan-out included).

use refgen::prelude::*;

const TG: f64 = 0.15; // conductance relative tolerance
const TC: f64 = 0.20; // capacitor relative tolerance
const N: usize = 256; // fleet size
const SEED: u64 = 20260727;

const G1: f64 = 1e-3;
const G2: f64 = 2.5e-4;
const C1: f64 = 1e-9;
const C2: f64 = 4e-10;

/// Second moment of a uniform relative multiplier `1 + t·u`, `u ~ U[−1,1)`.
fn m2(t: f64) -> f64 {
    1.0 + t * t / 3.0
}

/// The conductance-built ladder (conductances perturb multiplicatively,
/// which keeps the closed forms in product-of-moments shape).
fn base_circuit() -> Circuit {
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).unwrap();
    c.add_conductance("G1", "in", "l1", G1).unwrap();
    c.add_capacitor("C1", "l1", "0", C1).unwrap();
    c.add_conductance("G2", "l1", "out", G2).unwrap();
    c.add_capacitor("C2", "out", "0", C2).unwrap();
    c
}

fn tolerances() -> Perturbation {
    Perturbation::new()
        .relative(ElementClass::Conductances, TG)
        .relative(ElementClass::Capacitors, TC)
}

fn run_batch(threads: usize, executor: ExecutorKind, lanes: usize) -> BatchRun {
    let base = base_circuit();
    Session::for_circuit(&base)
        .spec(TransferSpec::voltage_gain("VIN", "out"))
        .config(
            RefgenConfig::builder().threads(threads).executor(executor).lane_width(lanes).build(),
        )
        .variants(VariantSet::new(tolerances(), N).seed(SEED))
        .solve_all()
        .expect("oracle fleet solves")
}

/// Closed-form `(mean, variance)` of each denominator coefficient, up to
/// the determinant's global sign.
fn closed_form() -> [(f64, f64); 3] {
    let (mg, mc) = (m2(TG), m2(TC));
    // p0 = G1·G2·a1·a2
    let p0 = G1 * G2;
    let var0 = p0 * p0 * (mg * mg - 1.0);
    // p2 = C1·C2·b1·b2
    let p2 = C1 * C2;
    let var2 = p2 * p2 * (mc * mc - 1.0);
    // p1 = T1 + T2 + T3 with T1 = C1G2·b1a2, T2 = C2G2·b2a2, T3 = C2G1·b2a1.
    let (t1, t2, t3) = (C1 * G2, C2 * G2, C2 * G1);
    let p1 = t1 + t2 + t3;
    let var_term = |t: f64| t * t * (mc * mg - 1.0);
    // Shared multipliers: T1,T2 share a2; T2,T3 share b2; T1,T3 share none.
    let cov12 = t1 * t2 * (mg - 1.0);
    let cov23 = t2 * t3 * (mc - 1.0);
    let var1 = var_term(t1) + var_term(t2) + var_term(t3) + 2.0 * (cov12 + cov23);
    [(p0, var0), (p1, var1), (p2, var2)]
}

#[test]
fn monte_carlo_statistics_match_closed_form() {
    let run = run_batch(1, ExecutorKind::Scoped, 1);
    assert_eq!(run.report.variants, N);
    assert_eq!(run.report.denominator.len(), 3);

    // The MNA determinant carries one global sign; resolve it from the
    // measured p0 (all ladder coefficients share it).
    let sign = run.report.denominator[0].mean.signum();
    let oracle = closed_form();
    for (i, ((want_mean, want_var), got)) in oracle.iter().zip(&run.report.denominator).enumerate()
    {
        // Mean: the MC standard error is sd/√N; 4 standard errors is a
        // comfortably deterministic bound at this fixed seed.
        let se = (want_var / N as f64).sqrt();
        let mean_err = (sign * got.mean - want_mean).abs();
        assert!(
            mean_err <= 4.0 * se,
            "p{i} mean: got {:.6e}, oracle {want_mean:.6e}, err {mean_err:.2e} > 4se {:.2e}",
            sign * got.mean,
            4.0 * se,
        );
        // Variance: the estimator's own relative spread is ~√(2/N) ≈ 9 %;
        // 30 % is ≳3σ with kurtosis headroom.
        let var_rel = (got.variance - want_var).abs() / want_var;
        assert!(
            var_rel <= 0.30,
            "p{i} variance: got {:.6e}, oracle {want_var:.6e}, rel {var_rel:.3}",
            got.variance,
        );
    }

    // Fleet cost accounting: one pivot search per distinct window-scale
    // region of one solve, regardless of the 256 variants.
    let single = Session::for_circuit(&base_circuit())
        .spec(TransferSpec::voltage_gain("VIN", "out"))
        .variants(VariantSet::new(tolerances(), 1).seed(SEED))
        .solve_all()
        .expect("single-variant fleet solves")
        .report;
    assert_eq!(
        run.report.pivot_searches, single.pivot_searches,
        "pivot searches must be fleet-size independent"
    );
    assert!(run.report.shared_plan_hits > single.shared_plan_hits);
    assert_eq!(run.report.total_refactor_hits, run.report.variant_refactor_hits.iter().sum());
}

/// One variant's full diagnostic trail rendered for comparison. The
/// `threads` report field of `SamplingBatched` is the lone sanctioned
/// difference across configurations (a fanned variant samples on one
/// worker thread), so it is masked; every other field must match bit for
/// bit.
fn render_diagnostics(solution: &refgen::core::Solution) -> String {
    solution
        .diagnostics()
        .map(|d| match d {
            Diagnostic::SamplingBatched {
                points, refactor_hits, compiled_hits, mirrored, ..
            } => {
                format!(
                    "SamplingBatched(points={points},refactor={refactor_hits},\
                     compiled={compiled_hits},mirrored={mirrored})"
                )
            }
            other => format!("{other:?}"),
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// The determinism acceptance for batch sessions: coefficients, recorded
/// diagnostics, variance statistics, and cost accounting are bit-identical
/// across `threads ∈ {1, 4}` × scoped/pool executors × batched-replay lane
/// widths `∈ {1, 4, 8}` — the grid that covers the sequential loop, the
/// variant-major fan-out, per-point sampling, and lane-chunked sampling
/// with odd tails.
#[test]
fn batch_is_bit_identical_across_threads_executors_and_lanes() {
    let reference = run_batch(1, ExecutorKind::Scoped, 1);
    let ref_coeffs: Vec<String> = reference
        .solutions()
        .iter()
        .map(|s| format!("{:?}|{:?}", s.network.denominator.coeffs(), s.network.numerator.coeffs()))
        .collect();
    let ref_diags: Vec<String> =
        reference.solutions().into_iter().map(render_diagnostics).collect();
    let ref_stats = format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}",
        reference.report.denominator,
        reference.report.numerator,
        reference.report.variant_points,
        reference.report.variant_refactor_hits,
        reference.report.total_refactor_hits,
        reference.report.pivot_searches,
        reference.report.shared_plan_hits,
        reference.report.programs_compiled,
    );
    for threads in [1, 4] {
        for executor in [ExecutorKind::Scoped, ExecutorKind::Pool] {
            for lanes in [1, 4, 8] {
                if (threads, executor, lanes) == (1, ExecutorKind::Scoped, 1) {
                    continue;
                }
                let label = format!("{executor:?}/{threads}t/{lanes}l");
                let run = run_batch(threads, executor, lanes);
                for (i, (a, s)) in ref_coeffs.iter().zip(run.solutions()).enumerate() {
                    let b = format!(
                        "{:?}|{:?}",
                        s.network.denominator.coeffs(),
                        s.network.numerator.coeffs()
                    );
                    // Debug formatting of f64 round-trips: equal strings ⇔
                    // equal bits.
                    assert_eq!(a, &b, "{label}: variant {i} coefficients differ");
                }
                for (i, (a, s)) in ref_diags.iter().zip(run.solutions()).enumerate() {
                    assert_eq!(
                        a,
                        &render_diagnostics(s),
                        "{label}: variant {i} diagnostics differ"
                    );
                }
                let stats = format!(
                    "{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}",
                    run.report.denominator,
                    run.report.numerator,
                    run.report.variant_points,
                    run.report.variant_refactor_hits,
                    run.report.total_refactor_hits,
                    run.report.pivot_searches,
                    run.report.shared_plan_hits,
                    run.report.programs_compiled,
                );
                assert_eq!(ref_stats, stats, "{label}: batch report differs");
            }
        }
    }
}

/// A µA741-class fleet through the full batch session: every variant
/// recovers the 39th-order denominator, and plan sharing keeps the pivot
/// searches at the single-solve count — independent of fleet size.
#[test]
fn ua741_batch_session_amortizes_pivot_searches() {
    let base = library::ua741();
    let spec = TransferSpec::voltage_gain("VIN", "out");
    let cfg = RefgenConfig::builder().verify(false).executor(ExecutorKind::Pool).build();
    let run_fleet = |count: usize| {
        Session::for_circuit(&base)
            .spec(spec.clone())
            .config(cfg)
            .variants(VariantSet::new(Perturbation::all_relative(0.03), count).seed(9))
            .solve_all()
            .expect("µA741 fleet solves")
    };
    let single = run_fleet(1);
    let fleet = run_fleet(6);
    for (i, s) in fleet.solutions().iter().enumerate() {
        assert_eq!(s.network.denominator.degree(), Some(39), "variant {i} lost denominator order");
    }
    assert_eq!(
        fleet.report.pivot_searches, single.report.pivot_searches,
        "µA741 fleet must reuse the single-solve pivot searches"
    );
    // The shared orders did real work: the fleet's extra five variants
    // planned all their windows without probing.
    assert!(fleet.report.shared_plan_hits >= 5 * single.report.pivot_searches);
}
