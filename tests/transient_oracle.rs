//! Oracle tier: the companion-model transient stepper against the
//! symbolic transfer function.
//!
//! For linear generator-library circuits the adaptive interpolation
//! recovers the *exact* rational transfer function, whose partial-fraction
//! step response is a closed form — an independent oracle for the time
//! stepper. Acceptance here is threefold:
//!
//! * **Convergence**: under Δt halving the stepper's worst-case deviation
//!   from `PartialFractions::step_response` must shrink at the method's
//!   asymptotic order (1 for backward Euler, 2 for trapezoidal).
//! * **Plan reuse**: `TransientStats` counters must show exactly one
//!   numeric factorization per run with every solve replaying the compiled
//!   `FactorProgram` (the `SweepStats` contract, transplanted to time).
//! * **Bit identity**: the full pipeline — symbolic solve, partial
//!   fractions, transient waveforms — must produce identical bits across
//!   `threads {1, 4}` × `{scoped, pool}` executors.

use refgen::prelude::*;

fn step_wave() -> Waveform {
    Waveform::Pulse {
        v1: 0.0,
        v2: 1.0,
        delay: 0.0,
        rise: 0.0,
        fall: 0.0,
        width: f64::INFINITY,
        period: f64::INFINITY,
    }
}

/// The generator-library circuits under test: name, circuit (with a unit
/// step attached to `VIN`), step size `h`, and stop time.
fn roster() -> Vec<(&'static str, Circuit, f64, f64)> {
    let mut rc = library::rc_ladder(3, 1e3, 1e-9);
    rc.set_waveform("VIN", step_wave()).unwrap();
    let mut lc = library::lc_ladder_lowpass(3, 50.0, 1e6);
    lc.set_waveform("VIN", step_wave()).unwrap();
    let mut sk = library::sallen_key_lowpass(1e5, 0.7);
    sk.set_waveform("VIN", step_wave()).unwrap();
    vec![
        // Fastest ladder pole ≈ 3.25/RC → h·|p_max| ≈ 0.16.
        ("rc_ladder3", rc, 5e-8, 1e-5),
        // Butterworth poles on the ω_c = 2π MHz circle → h·ω_c ≈ 0.1;
        // exercises the inductor companion branches.
        ("lc_ladder3", lc, 1.6e-8, 2e-6),
        // Complex pole pair behind a VCVS (Q = 0.7, f0 = 100 kHz).
        ("sallen_key", sk, 1.6e-7, 1e-5),
    ]
}

/// Closed-form oracle for `circuit`'s VIN → out unit-step response.
fn oracle(circuit: &Circuit, cfg: RefgenConfig) -> PartialFractions {
    AdaptiveInterpolator::new(cfg)
        .network_function(circuit, &TransferSpec::voltage_gain("VIN", "out"))
        .expect("symbolic solve")
        .partial_fractions()
        .expect("distinct poles")
}

/// Runs the stepper at `dt` and returns its worst deviation from the
/// oracle (excluding t = 0, where both are exactly the initial state).
fn max_error(
    circuit: &Circuit,
    pf: &PartialFractions,
    dt: f64,
    tstop: f64,
    method: IntegrationMethod,
) -> f64 {
    let card = TranCard { tstep: dt, tstop, tstart: 0.0 };
    let result = Session::for_circuit(circuit)
        .transient(TransientAnalysis::new(card).method(method))
        .unwrap();

    // The SweepStats-style contract: one pivot search at plan build, one
    // numeric factorization at the first step, every solve through the
    // compiled program (TR pays one extra primer solve).
    let stats = result.stats;
    assert_eq!(stats.refactor_hits, 1, "one numeric factorization per run");
    assert_eq!(stats.fresh_factorizations, 0, "no Markowitz fallback");
    let expected_solves = match method {
        IntegrationMethod::BackwardEuler => stats.steps,
        IntegrationMethod::Trapezoidal => stats.steps + 1,
    };
    assert_eq!(stats.compiled_hits, expected_solves, "every solve replays the program");

    let wave = result.node("out").expect("out node recorded");
    result
        .times()
        .iter()
        .zip(wave)
        .skip(1)
        .map(|(&t, &v)| (v - pf.step_response(t)).abs())
        .fold(0.0, f64::max)
}

#[test]
fn stepper_converges_to_symbolic_step_response_at_method_order() {
    let cfg = RefgenConfig::default();
    for (name, circuit, h, tstop) in roster() {
        let pf = oracle(&circuit, cfg);
        for method in [IntegrationMethod::BackwardEuler, IntegrationMethod::Trapezoidal] {
            let e1 = max_error(&circuit, &pf, h, tstop, method);
            let e2 = max_error(&circuit, &pf, h * 0.5, tstop, method);
            let observed = (e1 / e2).log2();
            let want = method.order() as f64;
            assert!(
                observed >= want - 0.2,
                "{name}/{}: observed order {observed:.2} < {want} (errors {e1:.3e} → {e2:.3e})",
                method.label()
            );
            // And the error is genuinely small, not just shrinking.
            let scale = pf.final_value().abs().max(1e-12);
            assert!(e2 / scale < 0.05, "{name}/{}: error {e2:.3e} too large", method.label());
        }
    }
}

/// One full pipeline pass — symbolic solve, partial fractions, both
/// steppers — rendered to a string whose equality implies bit equality
/// (Debug formatting of f64 round-trips).
fn snapshot(threads: usize, executor: ExecutorKind) -> String {
    let cfg = RefgenConfig::builder().threads(threads).executor(executor).build();
    let mut out = String::new();
    for (name, circuit, h, tstop) in roster() {
        let pf = oracle(&circuit, cfg);
        out.push_str(&format!("{name}: direct {:?} terms {:?}\n", pf.direct, pf.terms));
        for method in [IntegrationMethod::BackwardEuler, IntegrationMethod::Trapezoidal] {
            let card = TranCard { tstep: h, tstop, tstart: 0.0 };
            let result = Session::for_circuit(&circuit)
                .transient(TransientAnalysis::new(card).method(method).cross_check(true))
                .unwrap();
            out.push_str(&format!(
                "{name}/{}: wave {:?} stats {:?}\n",
                method.label(),
                result.node("out").unwrap(),
                result.stats,
            ));
        }
    }
    out
}

#[test]
fn pipeline_is_bit_identical_across_threads_and_executors() {
    let reference = snapshot(1, ExecutorKind::Scoped);
    for (threads, executor) in
        [(4, ExecutorKind::Scoped), (1, ExecutorKind::Pool), (4, ExecutorKind::Pool)]
    {
        let got = snapshot(threads, executor);
        assert_eq!(
            reference, got,
            "pipeline output changed under threads = {threads}, executor = {executor:?}"
        );
    }
}
