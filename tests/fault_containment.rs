//! The fault-containment acceptance tier: seeded faults through the
//! deterministic injection harness ([`refgen::mna::faults`]), contained
//! per variant, with the survivors proven **bit-identical** to a
//! fault-free run.
//!
//! The headline check: a 64-variant µA741 fleet with 4 seeded-singular
//! variants under [`FaultPolicy::Contain`] completes with exactly 60
//! [`VariantOutcome::Solved`] outcomes whose coefficients, recorded
//! diagnostics, and survivor-side accounting match a fault-free run of
//! just the 60 surviving circuits — across
//! `threads ∈ {1, 4}` × scoped/pool executors × lane widths `∈ {1, 4, 8}`
//! (the grid covering the sequential loop, the variant-major fan-out,
//! and lane-chunked sampling). Under the default `FailFast` the same
//! fleet returns the first victim's error, exactly.
//!
//! The victim set is seeded: `REFGEN_TEST_FAULTS=<u64>` reseeds it (the
//! CI fault-injection smoke step does), and
//! [`FaultPlan::seeded_variants`] never selects variant 0 — the
//! plan-cache warmer — so the cache is warmed identically with and
//! without faults.

use refgen::mna::faults::{self, FaultKind, FaultPlan};
use refgen::prelude::*;
use std::sync::Mutex;

const FLEET: usize = 64;
const FAULTS: usize = 4;
const SEED: u64 = 20260808;

/// Fault plans are process-global; every test in this binary both
/// installs plans and runs fleets (which arm per-variant fault scopes),
/// so the bodies must not overlap in time.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

fn ua741_fleet() -> Vec<Circuit> {
    let base = library::ua741();
    VariantSet::new(Perturbation::all_relative(0.03), FLEET).seed(SEED).generate(&base).unwrap()
}

fn victims() -> Vec<usize> {
    FaultPlan::seeded_variants(faults::env_seed().unwrap_or(0xFA17), FLEET, FAULTS)
}

fn run_fleet(
    circuits: &[Circuit],
    threads: usize,
    executor: ExecutorKind,
    lanes: usize,
    policy: FaultPolicy,
) -> Result<BatchRun, RefgenError> {
    Session::for_circuit(&circuits[0])
        .spec(spec())
        .config(
            RefgenConfig::builder()
                .verify(false)
                .threads(threads)
                .executor(executor)
                .lane_width(lanes)
                .fault_policy(policy)
                .build(),
        )
        .variant_circuits(circuits)
        .solve_all()
}

/// One solution's recorded diagnostic trail. As in `fleet_oracle.rs`,
/// the `threads` field of `SamplingBatched` is the lone sanctioned
/// difference across configurations and is masked; everything else must
/// match bit for bit.
fn render_diagnostics(solution: &refgen::core::Solution) -> String {
    solution
        .diagnostics()
        .map(|d| match d {
            Diagnostic::SamplingBatched {
                points, refactor_hits, compiled_hits, mirrored, ..
            } => {
                format!(
                    "SamplingBatched(points={points},refactor={refactor_hits},\
                     compiled={compiled_hits},mirrored={mirrored})"
                )
            }
            other => format!("{other:?}"),
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn render_solution(s: &refgen::core::Solution) -> String {
    format!(
        "{:?}|{:?}|{}",
        s.network.denominator.coeffs(),
        s.network.numerator.coeffs(),
        render_diagnostics(s)
    )
}

/// The headline acceptance grid (see module docs).
#[test]
fn contained_ua741_fleet_survivors_match_fault_free_run_bitwise() {
    let _exclusive = EXCLUSIVE.lock().unwrap();
    let circuits = ua741_fleet();
    let victims = victims();
    assert_eq!(victims.len(), FAULTS);
    assert!(!victims.contains(&0), "variant 0 warms the plan cache and must survive");

    // Fault-free reference: just the 60 surviving circuits, solved with
    // no plan installed. One configuration suffices — fault-free
    // bit-identity across this grid is `fleet_oracle.rs`'s tier.
    let survivors: Vec<Circuit> = circuits
        .iter()
        .enumerate()
        .filter(|(i, _)| !victims.contains(i))
        .map(|(_, c)| c.clone())
        .collect();
    let reference = run_fleet(&survivors, 1, ExecutorKind::Scoped, 1, FaultPolicy::FailFast)
        .expect("fault-free survivor fleet solves");
    let ref_solutions: Vec<String> =
        reference.solutions().into_iter().map(render_solution).collect();
    assert_eq!(ref_solutions.len(), FLEET - FAULTS);
    // Survivor-side accounting of the faulted run must equal the
    // fault-free run's. (The runtime-global plan-cache counters —
    // pivot_searches / shared_plan_hits / programs_compiled — are
    // excluded: faulted variants legitimately touch the shared cache
    // before dying.)
    let ref_accounting = format!(
        "{:?}|{:?}|{:?}|{:?}|{}",
        reference.report.denominator,
        reference.report.numerator,
        reference.report.variant_points,
        reference.report.variant_refactor_hits,
        reference.report.total_refactor_hits,
    );

    let _guard = faults::install(FaultPlan::new().fault_variants(&victims, FaultKind::Singular));
    for threads in [1, 4] {
        for executor in [ExecutorKind::Scoped, ExecutorKind::Pool] {
            for lanes in [1, 4, 8] {
                let label = format!("{executor:?}/{threads}t/{lanes}l");
                let run = run_fleet(&circuits, threads, executor, lanes, FaultPolicy::Contain)
                    .expect("contained fleet completes");
                assert_eq!(run.report.variants, FLEET - FAULTS, "{label}");
                assert_eq!(run.report.variants_attempted, FLEET, "{label}");
                assert_eq!(run.report.failed_variants, victims, "{label}");
                assert_eq!(run.outcomes.len(), FLEET, "{label}");
                for (i, outcome) in run.outcomes.iter().enumerate() {
                    assert_eq!(
                        outcome.is_solved(),
                        !victims.contains(&i),
                        "{label}: variant {i} on the wrong side of the fault line"
                    );
                }
                // Every victim died typed, not silently zero.
                for &v in &victims {
                    let error = run.outcomes[v].error().expect("victim has an error");
                    assert!(
                        !matches!(error, RefgenError::VariantPanicked { .. }),
                        "{label}: variant {v}: a seeded singularity must not panic, got {error:?}"
                    );
                }
                // Survivors: coefficients and recorded diagnostics are
                // bit-identical to the fault-free run, in fleet order.
                let solutions = run.solutions();
                assert_eq!(solutions.len(), ref_solutions.len(), "{label}");
                for (i, (a, s)) in ref_solutions.iter().zip(&solutions).enumerate() {
                    assert_eq!(a, &render_solution(s), "{label}: survivor {i} differs");
                }
                let accounting = format!(
                    "{:?}|{:?}|{:?}|{:?}|{}",
                    run.report.denominator,
                    run.report.numerator,
                    run.report.variant_points,
                    run.report.variant_refactor_hits,
                    run.report.total_refactor_hits,
                );
                assert_eq!(ref_accounting, accounting, "{label}: survivor accounting differs");
            }
        }
    }
}

/// Under the default `FailFast`, the same seeded fleet aborts with the
/// first victim's error — byte-for-byte the error `Contain` records for
/// that variant.
#[test]
fn failfast_returns_the_first_victims_error_exactly() {
    let _exclusive = EXCLUSIVE.lock().unwrap();
    let circuits = ua741_fleet();
    let victims = victims();
    let first = victims[0];
    let _guard = faults::install(FaultPlan::new().fault_variants(&victims, FaultKind::Singular));
    let contained = run_fleet(&circuits, 4, ExecutorKind::Scoped, 4, FaultPolicy::Contain)
        .expect("contained fleet completes");
    let expected = contained.outcomes[first].error().expect("first victim failed").clone();
    for (threads, executor, lanes) in
        [(1, ExecutorKind::Scoped, 1), (4, ExecutorKind::Scoped, 4), (4, ExecutorKind::Pool, 8)]
    {
        let err = run_fleet(&circuits, threads, executor, lanes, FaultPolicy::FailFast)
            .expect_err("fail-fast fleet aborts");
        assert_eq!(err, expected, "{executor:?}/{threads}t/{lanes}l");
    }
}

/// Scripted job panics under `Contain`: quarantined into typed
/// [`RefgenError::VariantPanicked`] outcomes while every other variant's
/// solution stays bit-identical to a panic-free run — the worker keeps
/// draining in both the scoped and pooled executors.
#[test]
fn scripted_panics_are_quarantined_and_survivors_unperturbed() {
    let _exclusive = EXCLUSIVE.lock().unwrap();
    let base = library::rc_ladder(6, 1e3, 1e-9);
    let fleet =
        VariantSet::new(Perturbation::all_relative(0.05), 24).seed(SEED).generate(&base).unwrap();
    let panickers = FaultPlan::seeded_variants(faults::env_seed().unwrap_or(0x9A71C), 24, 3);
    let survivors: Vec<Circuit> = fleet
        .iter()
        .enumerate()
        .filter(|(i, _)| !panickers.contains(i))
        .map(|(_, c)| c.clone())
        .collect();
    let reference = run_fleet(&survivors, 1, ExecutorKind::Scoped, 1, FaultPolicy::FailFast)
        .expect("panic-free fleet solves");
    let ref_solutions: Vec<String> =
        reference.solutions().into_iter().map(render_solution).collect();

    let _guard = faults::install(FaultPlan::new().fault_variants(&panickers, FaultKind::Panic));
    for (threads, executor, lanes) in
        [(1, ExecutorKind::Scoped, 1), (4, ExecutorKind::Scoped, 1), (4, ExecutorKind::Pool, 4)]
    {
        let label = format!("{executor:?}/{threads}t/{lanes}l");
        let run = run_fleet(&fleet, threads, executor, lanes, FaultPolicy::Contain)
            .expect("contained fleet completes");
        assert_eq!(run.report.failed_variants, panickers, "{label}");
        for &v in &panickers {
            match run.outcomes[v].error() {
                Some(RefgenError::VariantPanicked { message }) => assert!(
                    message.contains(&format!("scripted panic for variant {v}")),
                    "{label}: variant {v}: unexpected payload {message:?}"
                ),
                other => panic!("{label}: variant {v}: expected quarantined panic, got {other:?}"),
            }
        }
        let solutions = run.solutions();
        for (i, (a, s)) in ref_solutions.iter().zip(&solutions).enumerate() {
            assert_eq!(a, &render_solution(s), "{label}: survivor {i} differs");
        }
    }
}

/// The recovery ladder end to end through a fleet: `ReplayZeroPivot`
/// victims lose their compiled replays but rungs 1–2 rescue every
/// point, so the whole fleet still solves — under either policy — and
/// the rescued variants emit [`Diagnostic::SolveRecovered`] while
/// keeping coefficients at interpolation accuracy.
#[test]
fn replay_faults_recover_in_ladder_and_emit_diagnostics() {
    let _exclusive = EXCLUSIVE.lock().unwrap();
    let base = library::rc_ladder(6, 1e3, 1e-9);
    let fleet =
        VariantSet::new(Perturbation::all_relative(0.05), 8).seed(SEED).generate(&base).unwrap();
    let clean = run_fleet(&fleet, 1, ExecutorKind::Scoped, 1, FaultPolicy::FailFast)
        .expect("clean fleet solves");

    let victim = 5usize;
    let _guard =
        faults::install(FaultPlan::new().fault_variant(victim, FaultKind::ReplayZeroPivot));
    // FailFast: recovery is not a failure, so the fleet still completes.
    let run = run_fleet(&fleet, 1, ExecutorKind::Scoped, 1, FaultPolicy::FailFast)
        .expect("recovered fleet completes");
    assert_eq!(run.report.variants, 8);
    let recovered: u64 = run.solutions()[victim]
        .diagnostics()
        .filter_map(|d| match d {
            Diagnostic::SolveRecovered { fresh, reordered } => Some(fresh + reordered),
            _ => None,
        })
        .sum();
    assert!(recovered > 0, "the victim's dead replays must surface as SolveRecovered events");
    for (i, (a, b)) in clean.solutions().iter().zip(run.solutions()).enumerate() {
        if i == victim {
            // Rung-1 rescues are fresh exact factorizations — same
            // answer to interpolation accuracy, not necessarily the
            // same bits (a fresh Markowitz order may differ from the
            // replayed one).
            for (x, y) in a.network.denominator.coeffs().iter().zip(b.network.denominator.coeffs())
            {
                let rel = ((*x - *y).norm() / y.norm()).to_f64();
                assert!(rel < 1e-9, "victim coefficient drifted: rel {rel:.2e}");
            }
        } else {
            assert_eq!(render_solution(a), render_solution(b), "non-victim {i} perturbed");
        }
    }
}
