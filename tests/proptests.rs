//! Property-based tests across the whole pipeline.

use proptest::prelude::*;
use refgen::circuit::library::random_rc_mesh;
use refgen::prelude::*;

fn spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any random RC mesh's recovered network function must agree with the
    /// independent AC simulator at arbitrary frequencies.
    #[test]
    fn random_mesh_references_match_ac(
        nodes in 3usize..9,
        extra in 0usize..6,
        seed in 0u64..1_000_000,
        freq_exp in 0.0f64..9.0,
    ) {
        let circuit = random_rc_mesh(nodes, extra, seed);
        let nf = Session::for_circuit(&circuit)
            .spec(spec())
            .solve()
            .expect("RC meshes always recover")
            .network;
        let ac = AcAnalysis::new(&circuit, spec()).expect("valid circuit");
        let f = 10f64.powf(freq_exp);
        let sim = ac.at(f).expect("solves").response;
        let poly = nf.response_at_hz(f);
        let rel = (poly - sim).abs() / sim.abs().max(1e-30);
        prop_assert!(rel < 1e-6, "rel {rel:.2e} at {f:.2e} Hz (seed {seed})");
    }

    /// Degree equals the number of independent grounded caps (one per
    /// internal node in the mesh generator), and the DC gain is 1 (pure
    /// resistive divider… the mesh has no DC path to ground except through
    /// the backbone, so H(0) = 1 only when no shunt R exists — instead
    /// check H(0) is finite and coefficients are sign-coherent).
    #[test]
    fn random_mesh_structure(
        nodes in 3usize..8,
        extra in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let circuit = random_rc_mesh(nodes, extra, seed);
        let nf = Session::for_circuit(&circuit).spec(spec()).solve().expect("recovers").network;
        // One grounded cap per non-input node.
        prop_assert_eq!(nf.denominator.degree(), Some(nodes - 1));
        let h0 = nf.dc_gain();
        prop_assert!(h0.is_finite());
        prop_assert!((h0.re - 1.0).abs() < 1e-6, "no shunt R: H(0) = 1, got {h0}");
        // Denominator coefficients all share p0's sign (RC network ⇒ all
        // poles on the negative real axis ⇒ no sign alternation).
        let sign = nf.denominator.coeffs()[0].re().signum();
        for c in nf.denominator.coeffs() {
            prop_assert!(c.re().signum() == sign);
        }
    }

    /// Netlist writer/parser round-trip preserves every element.
    #[test]
    fn netlist_round_trip(
        nodes in 2usize..12,
        extra in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let circuit = random_rc_mesh(nodes, extra, seed);
        let text = to_spice(&circuit);
        let back = parse_spice(&text).expect("own output parses");
        prop_assert_eq!(circuit.elements().len(), back.elements().len());
        for (a, b) in circuit.elements().iter().zip(back.elements()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.kind, &b.kind);
        }
    }

    /// Poles of any RC mesh lie strictly in the left half plane, on the
    /// real axis (RC networks have real negative poles).
    #[test]
    fn random_mesh_poles_real_negative(
        nodes in 3usize..7,
        seed in 0u64..1_000_000,
    ) {
        let circuit = random_rc_mesh(nodes, 2, seed);
        let nf = Session::for_circuit(&circuit).spec(spec()).solve().expect("recovers").network;
        for p in nf.poles() {
            let z = p.to_complex();
            prop_assert!(z.re < 0.0, "pole {z} not in LHP");
            prop_assert!(z.im.abs() < 1e-4 * z.re.abs(), "pole {z} not real");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `Pwl` is exact at every breakpoint, exactly linear between adjacent
    /// breakpoints, and clamps outside the table.
    #[test]
    fn pwl_is_piecewise_linear_exact(
        n in 2usize..8,
        t0 in -1.0f64..1.0,
        steps in proptest::collection::vec(0.01f64..2.0, 8),
        values in proptest::collection::vec(-5.0f64..5.0, 8),
        frac in 0.0f64..1.0,
        seg in 0usize..7,
    ) {
        // Strictly increasing times from positive steps.
        let mut t = t0;
        let points: Vec<(f64, f64)> = (0..n)
            .map(|k| {
                let p = (t, values[k]);
                t += steps[k];
                p
            })
            .collect();
        let w = Waveform::Pwl { points: points.clone() };
        // Exact at breakpoints.
        for &(tk, vk) in &points {
            prop_assert_eq!(w.eval(tk), vk, "breakpoint at {}", tk);
        }
        // Exactly the linear interpolant inside a segment.
        let seg = seg % (n - 1);
        let ((ta, va), (tb, vb)) = (points[seg], points[seg + 1]);
        let tm = ta + frac * (tb - ta);
        if tm > ta && tm < tb {
            let want = va + (vb - va) * (tm - ta) / (tb - ta);
            prop_assert!((w.eval(tm) - want).abs() <= 1e-12 * want.abs().max(1.0));
        }
        // Clamped outside.
        prop_assert_eq!(w.eval(points[0].0 - 1.0), points[0].1);
        prop_assert_eq!(w.eval(points[n - 1].0 + 1.0), points[n - 1].1);
    }

    /// `Pulse` honors its rise/fall ramps: mid-edge values interpolate
    /// between `v1` and `v2`, the plateau holds `v2` exactly, the value
    /// before and at `delay` is exactly `v1`, and the train repeats with
    /// `period`.
    #[test]
    fn pulse_edges_honor_rise_and_fall(
        v1 in -3.0f64..3.0,
        v2 in -3.0f64..3.0,
        delay in 0.0f64..1e-3,
        rise in 1e-9f64..1e-4,
        fall in 1e-9f64..1e-4,
        width in 1e-6f64..1e-3,
        frac in 0.001f64..0.999,
    ) {
        let period = 2.0 * (rise + width + fall);
        let w = Waveform::Pulse { v1, v2, delay, rise, fall, width, period };
        prop_assert_eq!(w.eval(delay), v1, "holds v1 through the delay");
        prop_assert_eq!(w.eval(delay - 1e-9), v1);
        // Mid-rise: linear between v1 and v2.
        let want_rise = v1 + (v2 - v1) * frac;
        let got_rise = w.eval(delay + frac * rise);
        prop_assert!((got_rise - want_rise).abs() <= 1e-9 * want_rise.abs().max(1.0));
        // Plateau holds v2 exactly.
        prop_assert_eq!(w.eval(delay + rise + frac * width), v2);
        // Mid-fall: linear between v2 and v1.
        let want_fall = v2 + (v1 - v2) * frac;
        let got_fall = w.eval(delay + rise + width + frac * fall);
        prop_assert!((got_fall - want_fall).abs() <= 1e-9 * want_fall.abs().max(1.0));
        // One full period later the same phase repeats bit-identically
        // when the phase arithmetic is exact; allow f64 modulo noise.
        let t = delay + rise + frac * width;
        prop_assert!((w.eval(t + period) - w.eval(t)).abs() <= 1e-9 * v2.abs().max(1.0));
    }

    /// `Sin` matches the closed form after `delay` and holds the offset
    /// exactly before it.
    #[test]
    fn sin_matches_closed_form_and_holds_before_delay(
        vo in -2.0f64..2.0,
        va in 0.1f64..5.0,
        freq_hz in 1.0f64..1e6,
        delay in 0.0f64..1e-2,
        theta in 0.0f64..1e3,
        tau in 0.0f64..1e-2,
        before in 1e-12f64..1.0,
    ) {
        let w = Waveform::Sin { vo, va, freq_hz, delay, theta };
        prop_assert_eq!(w.eval(delay - before), vo, "holds vo before the delay");
        // Evaluate the closed form at the representable offset `t − delay`
        // so the comparison is bit-exact.
        let t = delay + tau;
        let tau_eff = t - delay;
        let want = vo
            + va * (-theta * tau_eff).exp()
                * (2.0 * std::f64::consts::PI * freq_hz * tau_eff).sin();
        prop_assert_eq!(w.eval(t), want, "closed form at tau = {}", tau_eff);
        prop_assert_eq!(w.initial_value(), w.eval(0.0));
    }
}
