//! Property-based tests across the whole pipeline.

use proptest::prelude::*;
use refgen::circuit::library::random_rc_mesh;
use refgen::prelude::*;

fn spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any random RC mesh's recovered network function must agree with the
    /// independent AC simulator at arbitrary frequencies.
    #[test]
    fn random_mesh_references_match_ac(
        nodes in 3usize..9,
        extra in 0usize..6,
        seed in 0u64..1_000_000,
        freq_exp in 0.0f64..9.0,
    ) {
        let circuit = random_rc_mesh(nodes, extra, seed);
        let nf = Session::for_circuit(&circuit)
            .spec(spec())
            .solve()
            .expect("RC meshes always recover")
            .network;
        let ac = AcAnalysis::new(&circuit, spec()).expect("valid circuit");
        let f = 10f64.powf(freq_exp);
        let sim = ac.at(f).expect("solves").response;
        let poly = nf.response_at_hz(f);
        let rel = (poly - sim).abs() / sim.abs().max(1e-30);
        prop_assert!(rel < 1e-6, "rel {rel:.2e} at {f:.2e} Hz (seed {seed})");
    }

    /// Degree equals the number of independent grounded caps (one per
    /// internal node in the mesh generator), and the DC gain is 1 (pure
    /// resistive divider… the mesh has no DC path to ground except through
    /// the backbone, so H(0) = 1 only when no shunt R exists — instead
    /// check H(0) is finite and coefficients are sign-coherent).
    #[test]
    fn random_mesh_structure(
        nodes in 3usize..8,
        extra in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let circuit = random_rc_mesh(nodes, extra, seed);
        let nf = Session::for_circuit(&circuit).spec(spec()).solve().expect("recovers").network;
        // One grounded cap per non-input node.
        prop_assert_eq!(nf.denominator.degree(), Some(nodes - 1));
        let h0 = nf.dc_gain();
        prop_assert!(h0.is_finite());
        prop_assert!((h0.re - 1.0).abs() < 1e-6, "no shunt R: H(0) = 1, got {h0}");
        // Denominator coefficients all share p0's sign (RC network ⇒ all
        // poles on the negative real axis ⇒ no sign alternation).
        let sign = nf.denominator.coeffs()[0].re().signum();
        for c in nf.denominator.coeffs() {
            prop_assert!(c.re().signum() == sign);
        }
    }

    /// Netlist writer/parser round-trip preserves every element.
    #[test]
    fn netlist_round_trip(
        nodes in 2usize..12,
        extra in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let circuit = random_rc_mesh(nodes, extra, seed);
        let text = to_spice(&circuit);
        let back = parse_spice(&text).expect("own output parses");
        prop_assert_eq!(circuit.elements().len(), back.elements().len());
        for (a, b) in circuit.elements().iter().zip(back.elements()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.kind, &b.kind);
        }
    }

    /// Poles of any RC mesh lie strictly in the left half plane, on the
    /// real axis (RC networks have real negative poles).
    #[test]
    fn random_mesh_poles_real_negative(
        nodes in 3usize..7,
        seed in 0u64..1_000_000,
    ) {
        let circuit = random_rc_mesh(nodes, 2, seed);
        let nf = Session::for_circuit(&circuit).spec(spec()).solve().expect("recovers").network;
        for p in nf.poles() {
            let z = p.to_complex();
            prop_assert!(z.re < 0.0, "pole {z} not in LHP");
            prop_assert!(z.im.abs() < 1e-4 * z.re.abs(), "pole {z} not real");
        }
    }
}
